#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "common/serialize.h"

#if defined(__unix__) || defined(__APPLE__)
#define CW_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cloudwalker {
namespace {

constexpr char kMagic[8] = {'C', 'W', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kEndianStamp = 0x01020304u;
constexpr uint64_t kHeaderBytes = 64;
constexpr uint64_t kDirEntryBytes = 32;
constexpr uint64_t kSectionAlign = 64;
constexpr uint32_t kNumSections = 8;       // required sections, ids 1..8
constexpr uint32_t kNumKnownSections = 10;  // + optional block index, perm

struct DirEntry {
  uint32_t id = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(DirEntry) == kDirEntryBytes);

const char* SectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kOutOffsets:
      return "out_offsets";
    case SnapshotSection::kOutTargets:
      return "out_targets";
    case SnapshotSection::kInOffsets:
      return "in_offsets";
    case SnapshotSection::kInTargets:
      return "in_targets";
    case SnapshotSection::kArenaOffsets:
      return "arena_offsets";
    case SnapshotSection::kArenaSlots:
      return "arena_slots";
    case SnapshotSection::kDiagonal:
      return "diagonal";
    case SnapshotSection::kMeta:
      return "meta";
    case SnapshotSection::kBlockIndex:
      return "block_index";
    case SnapshotSection::kPermutation:
      return "permutation";
  }
  return "unknown";
}

void PadTo(BinaryWriter* w, uint64_t alignment) {
  static const char kZeros[kSectionAlign] = {};
  const uint64_t rem = w->buffer().size() % alignment;
  if (rem != 0) w->WriteBytes(kZeros, alignment - rem);
}

std::string EncodeMetadata(const SimRankParams& params,
                           const SnapshotMetadata& m) {
  BinaryWriter w;
  w.Write(params.decay);
  w.Write(params.num_steps);
  w.Write(m.num_walkers);
  w.Write(m.jacobi_iterations);
  w.Write(m.seed);
  w.Write(m.row_mode);
  w.Write(m.dangling);
  w.Write(m.initial_diagonal);
  w.Write(m.query_options_fingerprint);
  w.Write(m.walk_steps);
  w.Write(m.build_seconds);
  w.WriteString(m.builder);
  return w.buffer();
}

Status DecodeMetadata(const std::string& bytes, SimRankParams* params,
                      SnapshotMetadata* m) {
  BinaryReader r(bytes);
  CW_RETURN_IF_ERROR(r.Read(&params->decay));
  CW_RETURN_IF_ERROR(r.Read(&params->num_steps));
  CW_RETURN_IF_ERROR(r.Read(&m->num_walkers));
  CW_RETURN_IF_ERROR(r.Read(&m->jacobi_iterations));
  CW_RETURN_IF_ERROR(r.Read(&m->seed));
  CW_RETURN_IF_ERROR(r.Read(&m->row_mode));
  CW_RETURN_IF_ERROR(r.Read(&m->dangling));
  CW_RETURN_IF_ERROR(r.Read(&m->initial_diagonal));
  CW_RETURN_IF_ERROR(r.Read(&m->query_options_fingerprint));
  CW_RETURN_IF_ERROR(r.Read(&m->walk_steps));
  CW_RETURN_IF_ERROR(r.Read(&m->build_seconds));
  CW_RETURN_IF_ERROR(r.ReadString(&m->builder));
  return Status::Ok();
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::DataLoss("snapshot " + path + ": " + what);
}

// The SnapshotSections group a payload section belongs to. 0 means the
// section (metadata) is validated under every mask.
uint32_t SectionGroup(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kOutOffsets:
    case SnapshotSection::kOutTargets:
      return kSnapshotOut;
    case SnapshotSection::kInOffsets:
    case SnapshotSection::kInTargets:
      return kSnapshotIn;
    case SnapshotSection::kArenaOffsets:
    case SnapshotSection::kArenaSlots:
      return kSnapshotArena;
    case SnapshotSection::kDiagonal:
      return kSnapshotDiagonal;
    case SnapshotSection::kMeta:
    case SnapshotSection::kBlockIndex:
    case SnapshotSection::kPermutation:
      return 0;
  }
  return 0;
}

#if CW_SNAPSHOT_HAS_MMAP
bool g_madvise_fail_for_test = false;

// Best-effort paging hint over [offset, offset + length) of the mapping at
// `base`. The start rounds down to a page boundary (madvise requires it;
// advice is per-page anyway). A failed hint is never fatal — the test hook
// forces failure to prove callers treat it that way.
bool MadviseRange(const char* base, uint64_t offset, uint64_t length,
                  int advice) {
  if (length == 0) return true;
  if (g_madvise_fail_for_test) return false;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t begin = offset / page * page;
  return ::madvise(const_cast<char*>(base) + begin,
                   static_cast<size_t>(offset - begin + length), advice) == 0;
}
#endif

// Writer read-back: stream the just-written .tmp off disk again (hinted
// MADV_SEQUENTIAL — it is a single front-to-back pass) and check every
// byte round-tripped before the rename publishes the artifact. Catches
// torn writes that hid behind page-cache buffering until fclose.
Status VerifyWrittenFile(const std::string& tmp, uint64_t expect_size,
                         uint32_t expect_crc) {
  uint32_t actual = 0;
  uint64_t size = 0;
#if CW_SNAPSHOT_HAS_MMAP
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot reopen for verification: " + tmp);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + tmp);
  }
  size = static_cast<uint64_t>(st.st_size);
  if (size > 0) {
    void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return Status::IoError("mmap failed on: " + tmp);
    }
    MadviseRange(static_cast<const char*>(base), 0, size, MADV_SEQUENTIAL);
    actual = Crc32(base, size);
    ::munmap(base, static_cast<size_t>(size));
  } else {
    ::close(fd);
  }
#else
  std::string buffer;
  CW_RETURN_IF_ERROR(BinaryReader::LoadFile(tmp, &buffer));
  size = buffer.size();
  actual = Crc32(buffer.data(), buffer.size());
#endif
  if (size != expect_size || actual != expect_crc) {
    return Status::IoError("read-back verification failed for " + tmp);
  }
  return Status::Ok();
}

}  // namespace

Status SnapshotWriter::Write(const std::string& path, const Graph& graph,
                             const AliasArena& arena,
                             const DiagonalIndex& index,
                             const SnapshotMetadata& metadata) {
  return Write(path, graph, arena, index, metadata, SnapshotWriteOptions{});
}

Status SnapshotWriter::Write(const std::string& path, const Graph& graph,
                             const AliasArena& arena,
                             const DiagonalIndex& index,
                             const SnapshotMetadata& metadata,
                             const SnapshotWriteOptions& options) {
  const uint64_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  if (index.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "snapshot: index covers " + std::to_string(index.num_nodes()) +
        " nodes but the graph has " + std::to_string(n));
  }
  CW_RETURN_IF_ERROR(index.params().Validate());
  if (arena.num_rows() != graph.num_nodes() || arena.num_slots() != m ||
      std::memcmp(arena.Offsets().data(), graph.InOffsets().data(),
                  (n + 1) * sizeof(uint64_t)) != 0) {
    return Status::InvalidArgument(
        "snapshot: alias arena does not mirror the graph's in-adjacency");
  }
  if (!options.permutation.empty()) {
    if (options.permutation.size() != n) {
      return Status::InvalidArgument(
          "snapshot: permutation has " +
          std::to_string(options.permutation.size()) + " entries for " +
          std::to_string(n) + " nodes");
    }
    std::vector<uint8_t> seen(n, 0);
    for (const NodeId ext : options.permutation) {
      if (ext >= n || seen[ext]) {
        return Status::InvalidArgument(
            "snapshot: permutation is not a bijection over the node ids");
      }
      seen[ext] = 1;
    }
  }

  const std::string meta_bytes = EncodeMetadata(index.params(), metadata);

  struct Payload {
    SnapshotSection id;
    uint32_t elem_size;
    const void* data;
    uint64_t length;
  };
  std::vector<Payload> payloads = {
      {SnapshotSection::kOutOffsets, sizeof(uint64_t),
       graph.OutOffsets().data(), (n + 1) * sizeof(uint64_t)},
      {SnapshotSection::kOutTargets, sizeof(NodeId),
       graph.OutTargets().data(), m * sizeof(NodeId)},
      {SnapshotSection::kInOffsets, sizeof(uint64_t),
       graph.InOffsets().data(), (n + 1) * sizeof(uint64_t)},
      {SnapshotSection::kInTargets, sizeof(NodeId), graph.InTargets().data(),
       m * sizeof(NodeId)},
      {SnapshotSection::kArenaOffsets, sizeof(uint64_t),
       arena.Offsets().data(), (n + 1) * sizeof(uint64_t)},
      {SnapshotSection::kArenaSlots, sizeof(AliasSlot), arena.Slots().data(),
       m * sizeof(AliasSlot)},
      {SnapshotSection::kDiagonal, sizeof(double), index.diagonal().data(),
       n * sizeof(double)},
      {SnapshotSection::kMeta, 1, meta_bytes.data(), meta_bytes.size()},
  };
  std::string block_index_bytes;
  if (options.write_block_index) {
    const uint64_t target =
        options.block_bytes != 0 ? options.block_bytes : kDefaultBlockBytes;
    block_index_bytes = EncodeBlockIndex(
        BuildBlockLayout(graph.InOffsets(), graph.InTargets(), arena.Slots(),
                         target),
        target);
    payloads.push_back({SnapshotSection::kBlockIndex, 1,
                        block_index_bytes.data(), block_index_bytes.size()});
  }
  if (!options.permutation.empty()) {
    payloads.push_back({SnapshotSection::kPermutation, sizeof(NodeId),
                        options.permutation.data(), n * sizeof(NodeId)});
  }
  const uint32_t num_sections = static_cast<uint32_t>(payloads.size());

  // Lay out the payloads after the header + directory, 64-byte aligned.
  uint64_t cursor = kHeaderBytes + uint64_t{num_sections} * kDirEntryBytes;
  BinaryWriter dir;
  for (const Payload& p : payloads) {
    cursor = (cursor + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
    DirEntry e;
    e.id = static_cast<uint32_t>(p.id);
    e.elem_size = p.elem_size;
    e.offset = cursor;
    e.length = p.length;
    e.crc = Crc32(p.data, p.length);
    dir.Write(e);
    cursor += p.length;
  }
  const uint64_t file_size = cursor;

  // The header CRC covers the whole header (with the CRC field itself
  // zeroed) plus the directory, so any stray flip in either is caught.
  BinaryWriter header;
  header.WriteBytes(kMagic, sizeof(kMagic));
  header.Write(kFormatVersion);
  header.Write(kEndianStamp);
  header.Write(num_sections);
  header.Write<uint32_t>(0);  // CRC placeholder
  header.Write(file_size);
  header.Write(n);
  header.Write(m);
  PadTo(&header, kHeaderBytes);
  const uint32_t header_crc =
      Crc32(dir.buffer().data(), dir.buffer().size(),
            Crc32(header.buffer().data(), header.buffer().size()));
  std::string header_bytes = header.buffer();
  std::memcpy(header_bytes.data() + 20, &header_crc, sizeof(header_crc));

  // Stream straight to disk — the payload arrays are already contiguous
  // spans, so only the ~320-byte header + directory is ever buffered and
  // persisting a multi-GB engine never doubles resident memory. Write to
  // .tmp then rename so the published path is always a complete artifact:
  // a crash mid-write leaves only the .tmp (removed on every error path
  // below), and replacing a file a live server has mmapped swaps the
  // directory entry while the old inode stays intact under the existing
  // mapping (the SIGHUP reload flow).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  // `disk_crc` accumulates over every byte in file order; the read-back
  // pass below re-derives it from the .tmp to prove the write stuck.
  uint32_t disk_crc = 0;
  const auto put = [f, &disk_crc](const void* data, uint64_t size) {
    if (size == 0) return true;
    disk_crc = Crc32(data, size, disk_crc);
    return std::fwrite(data, 1, size, f) == size;
  };
  static const char kPadZeros[kSectionAlign] = {};
  uint64_t written = header_bytes.size() + dir.buffer().size();
  bool ok = put(header_bytes.data(), header_bytes.size()) &&
            put(dir.buffer().data(), dir.buffer().size());
  for (const Payload& p : payloads) {
    if (!ok) break;
    const uint64_t rem = written % kSectionAlign;
    const uint64_t pad = rem == 0 ? 0 : kSectionAlign - rem;
    ok = put(kPadZeros, pad) && put(p.data, p.length);
    written += pad + p.length;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  const Status readback = VerifyWrittenFile(tmp, file_size, disk_crc);
  if (!readback.ok()) {
    std::remove(tmp.c_str());
    return readback;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

SnapshotView::~SnapshotView() {
#if CW_SNAPSHOT_HAS_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), static_cast<size_t>(size_));
  }
#endif
}

StatusOr<std::shared_ptr<const SnapshotView>> SnapshotView::Open(
    const std::string& path) {
  return Open(path, kSnapshotAll);
}

StatusOr<std::shared_ptr<const SnapshotView>> SnapshotView::Open(
    const std::string& path, uint32_t sections) {
  // shared_ptr (not make_shared): the constructor is private, and the
  // destructor must run even when validation fails below.
  std::shared_ptr<SnapshotView> view(new SnapshotView());
#if CW_SNAPSHOT_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open snapshot: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat snapshot: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size > 0) {
    void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return Status::IoError("mmap failed on snapshot: " + path);
    }
    view->data_ = static_cast<const char*>(base);
    view->mmapped_ = true;
    // Validation is one front-to-back integrity pass; hint it. Validate
    // re-hints the randomly-accessed sections MADV_RANDOM once it's done.
    MadviseRange(view->data_, 0, size, MADV_SEQUENTIAL);
  } else {
    ::close(fd);
  }
  view->size_ = size;
#else
  CW_RETURN_IF_ERROR(BinaryReader::LoadFile(path, &view->heap_buffer_));
  view->data_ = view->heap_buffer_.data();
  view->size_ = view->heap_buffer_.size();
#endif
  CW_RETURN_IF_ERROR(view->Validate(path, sections & kSnapshotAll));
  return std::shared_ptr<const SnapshotView>(std::move(view));
}

Status SnapshotView::Validate(const std::string& path, uint32_t sections) {
  sections_ = sections;
  const auto selected = [sections](uint32_t id) {
    const uint32_t group = SectionGroup(id);
    return group == 0 || (sections & group) != 0;
  };
  if (size_ < kHeaderBytes) {
    return Corrupt(path, "truncated header (" + std::to_string(size_) +
                             " bytes, need " + std::to_string(kHeaderBytes) +
                             ")");
  }
  if (reinterpret_cast<uintptr_t>(data_) % alignof(uint64_t) != 0) {
    return Status::Internal("snapshot buffer is not 8-byte aligned");
  }
  if (std::memcmp(data_, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a cloudwalker snapshot: " + path);
  }
  uint32_t version = 0, endian = 0, num_sections = 0, dir_crc = 0;
  uint64_t file_size = 0, n64 = 0, m64 = 0;
  std::memcpy(&version, data_ + 8, 4);
  std::memcpy(&endian, data_ + 12, 4);
  std::memcpy(&num_sections, data_ + 16, 4);
  std::memcpy(&dir_crc, data_ + 20, 4);
  std::memcpy(&file_size, data_ + 24, 8);
  std::memcpy(&n64, data_ + 32, 8);
  std::memcpy(&m64, data_ + 40, 8);
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version) + " in " + path);
  }
  if (endian != kEndianStamp) {
    return Status::InvalidArgument(
        "snapshot " + path +
        " was written on a machine with a different byte order");
  }
  if (num_sections < kNumSections || num_sections > 64) {
    return Corrupt(
        path, "implausible section count " + std::to_string(num_sections));
  }
  const uint64_t dir_bytes = uint64_t{num_sections} * kDirEntryBytes;
  if (kHeaderBytes + dir_bytes > size_) {
    return Corrupt(path, "truncated directory");
  }
  {
    char header_copy[kHeaderBytes];
    std::memcpy(header_copy, data_, kHeaderBytes);
    std::memset(header_copy + 20, 0, 4);  // the CRC field covers itself as 0
    const uint32_t actual =
        Crc32(data_ + kHeaderBytes, dir_bytes,
              Crc32(header_copy, kHeaderBytes));
    if (actual != dir_crc) {
      return Corrupt(path, "header/directory checksum mismatch");
    }
    // The artifact's identity: the verified header+directory CRC already
    // covers every section checksum, so any byte-level change anywhere in
    // the file moves it. Mixed with the size for a full 64-bit tag.
    fingerprint_ = DeriveSeed(actual, size_);
  }
  if (file_size != size_) {
    return Corrupt(path, "file is " + std::to_string(size_) +
                             " bytes but the header records " +
                             std::to_string(file_size));
  }
  if (n64 >= kInvalidNode) {
    return Corrupt(path, "node count exceeds the 32-bit id space");
  }
  const uint64_t n = n64;
  const uint64_t m = m64;

  // Walk the directory: bounds, alignment, element sizing, payload CRC.
  const DirEntry* entries =
      reinterpret_cast<const DirEntry*>(data_ + kHeaderBytes);
  const DirEntry* found[kNumKnownSections] = {};
  for (uint32_t i = 0; i < num_sections; ++i) {
    const DirEntry& e = entries[i];
    if (e.offset % kSectionAlign != 0 || e.offset > size_ ||
        e.length > size_ - e.offset) {
      return Corrupt(path, std::string("section ") + SectionName(e.id) +
                               " lies outside the file");
    }
    if (e.elem_size == 0 || e.length % e.elem_size != 0) {
      return Corrupt(path, std::string("section ") + SectionName(e.id) +
                               " has a malformed element size");
    }
    // The payload CRC pass is the expensive part of Open; a masked open
    // skips it for the sections it will never read (their checksums stay
    // pinned by the verified directory CRC above).
    if (selected(e.id) && Crc32(data_ + e.offset, e.length) != e.crc) {
      return Corrupt(path, std::string("checksum mismatch in section ") +
                               SectionName(e.id));
    }
    const uint32_t id = e.id;
    if (id >= 1 && id <= kNumKnownSections && found[id - 1] == nullptr) {
      found[id - 1] = &e;
    }
  }
  // Tamper-evidence for the bytes no section CRC covers: sections must not
  // overlap, and every gap (alignment padding) must be zero, so a single
  // flipped byte anywhere in the file is detectable.
  {
    std::vector<std::pair<uint64_t, uint64_t>> extents;
    extents.reserve(num_sections + 1);
    extents.emplace_back(0, kHeaderBytes + dir_bytes);
    for (uint32_t i = 0; i < num_sections; ++i) {
      extents.emplace_back(entries[i].offset,
                           entries[i].offset + entries[i].length);
    }
    std::sort(extents.begin(), extents.end());
    uint64_t cursor = 0;
    for (const auto& [begin, end] : extents) {
      if (begin < cursor) {
        return Corrupt(path, "overlapping sections");
      }
      for (uint64_t b = cursor; b < begin; ++b) {
        if (data_[b] != 0) {
          return Corrupt(path, "nonzero padding between sections");
        }
      }
      cursor = end;
    }
    for (uint64_t b = cursor; b < size_; ++b) {
      if (data_[b] != 0) {
        return Corrupt(path, "nonzero trailing bytes");
      }
    }
  }

  struct Expected {
    SnapshotSection id;
    uint32_t elem_size;
    uint64_t count;  // expected element count; meta is free-length
  };
  const Expected expect[kNumSections] = {
      {SnapshotSection::kOutOffsets, sizeof(uint64_t), n + 1},
      {SnapshotSection::kOutTargets, sizeof(NodeId), m},
      {SnapshotSection::kInOffsets, sizeof(uint64_t), n + 1},
      {SnapshotSection::kInTargets, sizeof(NodeId), m},
      {SnapshotSection::kArenaOffsets, sizeof(uint64_t), n + 1},
      {SnapshotSection::kArenaSlots, sizeof(AliasSlot), m},
      {SnapshotSection::kDiagonal, sizeof(double), n},
      {SnapshotSection::kMeta, 1, 0},
  };
  for (const Expected& x : expect) {
    const DirEntry* e = found[static_cast<uint32_t>(x.id) - 1];
    if (e == nullptr) {
      return Corrupt(path, std::string("missing section ") +
                               SectionName(static_cast<uint32_t>(x.id)));
    }
    if (e->elem_size != x.elem_size ||
        (x.id != SnapshotSection::kMeta &&
         e->length != x.count * x.elem_size)) {
      return Corrupt(path, std::string("section ") +
                               SectionName(static_cast<uint32_t>(x.id)) +
                               " disagrees with the header's node/edge "
                               "counts");
    }
  }

  const auto section_ptr = [this](const DirEntry* e) {
    return data_ + e->offset;
  };
  const DirEntry* e_out_off =
      found[static_cast<uint32_t>(SnapshotSection::kOutOffsets) - 1];
  const DirEntry* e_out_tgt =
      found[static_cast<uint32_t>(SnapshotSection::kOutTargets) - 1];
  const DirEntry* e_in_off =
      found[static_cast<uint32_t>(SnapshotSection::kInOffsets) - 1];
  const DirEntry* e_in_tgt =
      found[static_cast<uint32_t>(SnapshotSection::kInTargets) - 1];
  const DirEntry* e_ar_off =
      found[static_cast<uint32_t>(SnapshotSection::kArenaOffsets) - 1];
  const DirEntry* e_ar_slot =
      found[static_cast<uint32_t>(SnapshotSection::kArenaSlots) - 1];
  const DirEntry* e_diag =
      found[static_cast<uint32_t>(SnapshotSection::kDiagonal) - 1];
  const DirEntry* e_meta =
      found[static_cast<uint32_t>(SnapshotSection::kMeta) - 1];

  if ((sections & kSnapshotOut) != 0) {
    out_offsets_ = {
        reinterpret_cast<const uint64_t*>(section_ptr(e_out_off)), n + 1};
    out_targets_ = {reinterpret_cast<const NodeId*>(section_ptr(e_out_tgt)),
                    m};
  }
  if ((sections & kSnapshotIn) != 0) {
    in_offsets_ = {reinterpret_cast<const uint64_t*>(section_ptr(e_in_off)),
                   n + 1};
    in_targets_ = {reinterpret_cast<const NodeId*>(section_ptr(e_in_tgt)),
                   m};
  }
  if ((sections & kSnapshotArena) != 0) {
    arena_offsets_ = {
        reinterpret_cast<const uint64_t*>(section_ptr(e_ar_off)), n + 1};
    arena_slots_ = {
        reinterpret_cast<const AliasSlot*>(section_ptr(e_ar_slot)), m};
  }
  if ((sections & kSnapshotDiagonal) != 0) {
    diagonal_ = {reinterpret_cast<const double*>(section_ptr(e_diag)), n};
  }

  // Structural invariants the zero-copy views rely on: the kernels index
  // with these values unchecked, so a file that passes here can never
  // send a walker out of bounds. Each check runs only for the groups this
  // open selected — an unselected group hands out no spans.
  const auto offsets_ok = [&](std::span<const uint64_t> off) {
    if (off.front() != 0 || off.back() != m) return false;
    for (uint64_t v = 0; v < n; ++v) {
      if (off[v] > off[v + 1]) return false;
    }
    return true;
  };
  if (((sections & kSnapshotOut) != 0 && !offsets_ok(out_offsets_)) ||
      ((sections & kSnapshotIn) != 0 && !offsets_ok(in_offsets_))) {
    return Corrupt(path, "CSR offsets are not monotone over [0, num_edges]");
  }
  if ((sections & kSnapshotArena) != 0) {
    if ((sections & kSnapshotIn) != 0) {
      if (std::memcmp(arena_offsets_.data(), in_offsets_.data(),
                      (n + 1) * sizeof(uint64_t)) != 0) {
        return Corrupt(path, "alias arena offsets diverge from the in-CSR");
      }
    } else if (!offsets_ok(arena_offsets_)) {
      // Without the in-CSR to mirror-check against, the arena offsets
      // must still be independently safe to index with.
      return Corrupt(path,
                     "arena offsets are not monotone over [0, num_edges]");
    }
  }
  const auto targets_ok = [n, m](std::span<const NodeId> targets) {
    for (uint64_t i = 0; i < m; ++i) {
      if (targets[i] >= n) return false;
    }
    return true;
  };
  if (((sections & kSnapshotOut) != 0 && !targets_ok(out_targets_)) ||
      ((sections & kSnapshotIn) != 0 && !targets_ok(in_targets_))) {
    return Corrupt(path, "edge target out of node range");
  }
  if ((sections & kSnapshotArena) != 0) {
    for (uint64_t i = 0; i < m; ++i) {
      if (arena_slots_[i].alias >= n) {
        return Corrupt(path, "alias slot target out of node range");
      }
    }
  }

  // Optional extension sections (ids 9/10). The CRC pass above already
  // pinned their bytes (group 0 — always checked), so a failure here means
  // a malformed writer, not bit rot; it is still corruption to the caller.
  if (const DirEntry* e_blocks =
          found[static_cast<uint32_t>(SnapshotSection::kBlockIndex) - 1]) {
    if (e_blocks->elem_size != 1) {
      return Corrupt(path, "block index has a malformed element size");
    }
    std::string block_bytes(section_ptr(e_blocks), e_blocks->length);
    uint64_t target = 0;
    const Status decoded = DecodeBlockIndex(block_bytes, n, m, &blocks_,
                                            &target);
    if (!decoded.ok()) {
      return Corrupt(path,
                     "undecodable block index (" + decoded.ToString() + ")");
    }
    block_target_bytes_ = target;
    if ((sections & kSnapshotIn) != 0) {
      // The blocks must cut the in-CSR at exactly the rows they claim —
      // the block cache preads [edge_begin, edge_end) for nodes
      // [node_begin, node_end) without consulting in_offsets again.
      for (const BlockExtent& b : blocks_) {
        if (in_offsets_[b.node_begin] != b.edge_begin ||
            in_offsets_[b.node_end] != b.edge_end) {
          return Corrupt(path, "block index disagrees with the in-CSR");
        }
      }
    }
  }
  if (const DirEntry* e_perm =
          found[static_cast<uint32_t>(SnapshotSection::kPermutation) - 1]) {
    if (e_perm->elem_size != sizeof(NodeId) ||
        e_perm->length != n * sizeof(NodeId)) {
      return Corrupt(path, "permutation disagrees with the node count");
    }
    permutation_ = {reinterpret_cast<const NodeId*>(section_ptr(e_perm)), n};
    std::vector<uint8_t> seen(n, 0);
    for (const NodeId ext : permutation_) {
      if (ext >= n || seen[ext]) {
        return Corrupt(path, "permutation is not a bijection");
      }
      seen[ext] = 1;
    }
  }

  std::string meta_bytes(section_ptr(e_meta), e_meta->length);
  const Status meta_ok = DecodeMetadata(meta_bytes, &params_, &metadata_);
  if (!meta_ok.ok()) {
    return Corrupt(path, "undecodable metadata (" + meta_ok.ToString() + ")");
  }
  if (!params_.Validate().ok()) {
    return Corrupt(path, "metadata carries invalid SimRank parameters");
  }

#if CW_SNAPSHOT_HAS_MMAP
  // Serving hint: queries hit the CSR and arena arrays in walker order —
  // effectively at random — so flip those extents from the sequential
  // validation hint to MADV_RANDOM. Purely advisory; a failing madvise
  // (see SetSnapshotMadviseFailForTest) never fails the open.
  if (mmapped_) {
    for (const SnapshotSection id :
         {SnapshotSection::kOutOffsets, SnapshotSection::kOutTargets,
          SnapshotSection::kInOffsets, SnapshotSection::kInTargets,
          SnapshotSection::kArenaOffsets, SnapshotSection::kArenaSlots}) {
      const DirEntry* e = found[static_cast<uint32_t>(id) - 1];
      MadviseRange(data_, e->offset, e->length, MADV_RANDOM);
    }
  }
#endif

  num_nodes_ = static_cast<NodeId>(n);
  num_edges_ = m;
  return Status::Ok();
}

StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path) {
  std::string bytes;
  CW_RETURN_IF_ERROR(BinaryReader::LoadFile(path, &bytes));
  const char* data = bytes.data();
  const uint64_t size = bytes.size();
  if (size < kHeaderBytes) {
    return Corrupt(path, "truncated header (" + std::to_string(size) +
                             " bytes, need " + std::to_string(kHeaderBytes) +
                             ")");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a cloudwalker snapshot: " + path);
  }
  SnapshotInfo info;
  uint32_t endian = 0, dir_crc = 0;
  std::memcpy(&info.format_version, data + 8, 4);
  std::memcpy(&endian, data + 12, 4);
  std::memcpy(&info.num_sections, data + 16, 4);
  std::memcpy(&dir_crc, data + 20, 4);
  std::memcpy(&info.num_nodes, data + 32, 8);
  std::memcpy(&info.num_edges, data + 40, 8);
  info.file_bytes = size;
  if (endian != kEndianStamp) {
    return Status::InvalidArgument(
        "snapshot " + path +
        " was written on a machine with a different byte order");
  }
  const uint64_t dir_bytes = uint64_t{info.num_sections} * kDirEntryBytes;
  if (dir_bytes > size - kHeaderBytes) {
    return Corrupt(path, "truncated directory");
  }
  {
    char header_copy[kHeaderBytes];
    std::memcpy(header_copy, data, kHeaderBytes);
    std::memset(header_copy + 20, 0, 4);
    info.header_crc_ok = Crc32(data + kHeaderBytes, dir_bytes,
                               Crc32(header_copy, kHeaderBytes)) == dir_crc;
  }
  info.sections.reserve(info.num_sections);
  for (uint32_t i = 0; i < info.num_sections; ++i) {
    DirEntry e;
    std::memcpy(&e, data + kHeaderBytes + i * kDirEntryBytes, sizeof(e));
    SnapshotSectionInfo s;
    s.id = e.id;
    s.name = SectionName(e.id);
    s.elem_size = e.elem_size;
    s.offset = e.offset;
    s.length = e.length;
    s.crc = e.crc;
    const bool in_file = e.offset <= size && e.length <= size - e.offset;
    s.crc_ok = in_file && Crc32(data + e.offset, e.length) == e.crc;
    if (e.id == static_cast<uint32_t>(SnapshotSection::kBlockIndex)) {
      info.has_block_index = true;
      if (in_file) {
        std::vector<BlockExtent> blocks;
        uint64_t target = 0;
        if (DecodeBlockIndex(std::string(data + e.offset, e.length),
                             info.num_nodes, info.num_edges, &blocks, &target)
                .ok()) {
          info.block_count = blocks.size();
        }
      }
    } else if (e.id == static_cast<uint32_t>(SnapshotSection::kPermutation)) {
      info.has_permutation = true;
    }
    info.sections.push_back(std::move(s));
  }
  return info;
}

void SetSnapshotMadviseFailForTest(bool fail) {
#if CW_SNAPSHOT_HAS_MMAP
  g_madvise_fail_for_test = fail;
#else
  (void)fail;
#endif
}

}  // namespace cloudwalker
