// cloudwalker-snap-v1 — the persistent, mmap-loadable engine snapshot
// (DESIGN.md section 9).
//
// A snapshot freezes everything a query-ready CloudWalker needs — the CSR
// graph (both adjacency directions: walks follow in-links, the MCSS push
// follows out-links), the flattened AliasArena, the diag(D) index, and
// build metadata — into one flat file whose payload arrays are 64-byte
// aligned and individually CRC-32 stamped. SnapshotView::Open mmaps the
// file and hands out spans into the mapping; Graph::FromCsrViews,
// AliasArena::FromViews, and DiagonalIndex::FromView wrap those spans
// zero-copy, so opening costs one integrity pass instead of an index
// rebuild, and answers are bit-identical to an in-memory build.
//
// Byte layout (all integers little-endian; the header stamps the byte
// order and a foreign-endian file is rejected rather than byte-swapped):
//
//   [0, 64)    header
//     0   8   magic "CWSNAP1\0"
//     8   4   format version (1)
//     12  4   endianness stamp 0x01020304
//     16  4   section count
//     20  4   CRC-32 of header (with this field zeroed) + directory
//     24  8   total file size in bytes
//     32  8   num_nodes
//     40  8   num_edges
//     48  16  reserved (zero)
//   [64, 64 + 32 * sections)   directory, one 32-byte entry per section
//     0   4   section id (SnapshotSection)
//     4   4   element size in bytes
//     8   8   payload offset from file start (64-byte aligned)
//     16  8   payload length in bytes (multiple of element size)
//     24  4   CRC-32 of the payload
//     28  4   reserved (zero)
//   payload sections, in directory order, zero-padded to 64-byte
//   alignment
//
// Corruption never reaches the kernels: wrong magic / version / byte
// order fail with kInvalidArgument, any mismatch between the directory,
// the checksums, and the bytes on disk fails with kDataLoss, and the
// structural invariants the zero-copy views rely on (monotone offsets,
// in-range targets, arena/in-CSR agreement) are verified before a span is
// ever handed out.

#ifndef CLOUDWALKER_SNAPSHOT_SNAPSHOT_H_
#define CLOUDWALKER_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/diagonal.h"
#include "core/options.h"
#include "engine/alias.h"
#include "graph/graph.h"
#include "ooc/block_layout.h"

namespace cloudwalker {

/// Payload section ids of cloudwalker-snap-v1. Sections 1-8 are required;
/// 9 and 10 are optional extensions (still format version 1): a reader
/// that predates them validates them generically (bounds, element sizing,
/// CRC — every unknown id gets the always-checked group) and otherwise
/// ignores them, and a reader that knows them treats their absence as
/// "old-format snapshot" and falls back accordingly (DESIGN.md
/// section 14). Both directions stay fully compatible.
enum class SnapshotSection : uint32_t {
  kOutOffsets = 1,    // uint64[num_nodes + 1]
  kOutTargets = 2,    // NodeId[num_edges]
  kInOffsets = 3,     // uint64[num_nodes + 1]
  kInTargets = 4,     // NodeId[num_edges]
  kArenaOffsets = 5,  // uint64[num_nodes + 1] (mirrors kInOffsets)
  kArenaSlots = 6,    // AliasSlot[num_edges]
  kDiagonal = 7,      // double[num_nodes]
  kMeta = 8,          // BinaryWriter-encoded SnapshotMetadata
  kBlockIndex = 9,    // EncodeBlockIndex bytes (ooc/block_layout.h)
  kPermutation = 10,  // NodeId[num_nodes]: internal id -> external id
};

/// Bitmask over the payload groups of a snapshot, for partition-aware
/// opens: a shard worker that only ever advances walkers along in-links
/// loads kSnapshotIn | kSnapshotArena and skips the integrity pass (CRC +
/// structural sweep) over the out-CSR and diagonal sections it never
/// touches. The header, directory, and metadata are always validated, and
/// the directory CRC still covers every section checksum, so a masked open
/// loses no tamper evidence for the bytes it actually reads. Spans of
/// unselected groups come back empty.
enum SnapshotSections : uint32_t {
  kSnapshotOut = 1u << 0,       // kOutOffsets + kOutTargets
  kSnapshotIn = 1u << 1,        // kInOffsets + kInTargets
  kSnapshotArena = 1u << 2,     // kArenaOffsets + kArenaSlots
  kSnapshotDiagonal = 1u << 3,  // kDiagonal
  kSnapshotAll = 0xfu,
};

/// Build provenance stamped into every snapshot: the indexing knobs the
/// D-vector was estimated under, the default-QueryOptions fingerprint the
/// build was validated against, and execution counters.
struct SnapshotMetadata {
  /// Indexing fingerprint (params live in the DiagonalIndex itself).
  uint32_t num_walkers = 0;
  uint32_t jacobi_iterations = 0;
  uint64_t seed = 0;
  uint32_t row_mode = 0;
  uint32_t dangling = 0;
  double initial_diagonal = 0.0;
  /// QueryOptionsFingerprint of the defaults (core/options.h).
  uint64_t query_options_fingerprint = 0;
  /// Offline-build counters (core/indexer.h).
  uint64_t walk_steps = 0;
  double build_seconds = 0.0;
  /// Free-form builder tag, e.g. "cloudwalker-0.1.0".
  std::string builder;
};

/// Writer knobs for the optional format extensions.
struct SnapshotWriteOptions {
  /// Write the kBlockIndex section (the out-of-core block layout;
  /// DESIGN.md section 14). Off reproduces the pre-extension format
  /// exactly — the compatibility tests use this to author "old" snapshots
  /// with the current writer.
  bool write_block_index = true;
  /// Target paged payload bytes per block; 0 selects kDefaultBlockBytes
  /// (ooc/block_layout.h).
  uint64_t block_bytes = 0;
  /// When non-empty: the locality reorder permutation, internal id ->
  /// external id, written as the kPermutation section. Must be a bijection
  /// over [0, num_nodes). The graph/arena/index passed to Write are
  /// already in internal (reordered) id space; the permutation is what
  /// lets the API boundary translate back (DESIGN.md section 14).
  std::span<const NodeId> permutation = {};
};

/// Writes one cloudwalker-snap-v1 file. The arena must mirror the graph's
/// in-adjacency (the layout every CloudWalker build produces) and the
/// index must cover the graph's nodes.
class SnapshotWriter {
 public:
  static Status Write(const std::string& path, const Graph& graph,
                      const AliasArena& arena, const DiagonalIndex& index,
                      const SnapshotMetadata& metadata);

  /// As above with explicit extension knobs.
  static Status Write(const std::string& path, const Graph& graph,
                      const AliasArena& arena, const DiagonalIndex& index,
                      const SnapshotMetadata& metadata,
                      const SnapshotWriteOptions& options);
};

/// An open snapshot: the validated mmap plus typed spans into it. Share
/// via shared_ptr — every consumer of the spans (Graph views, arena views,
/// the CloudWalker facade) must keep the view alive, which is exactly what
/// CloudWalker::Open arranges.
class SnapshotView {
 public:
  /// Opens, maps, and fully validates `path` (header, directory, per-
  /// section CRC, structural invariants). On platforms without mmap the
  /// file is read into a heap buffer instead — same API, same spans.
  static StatusOr<std::shared_ptr<const SnapshotView>> Open(
      const std::string& path);

  /// Partition-aware open: validates and exposes only the payload groups
  /// in `sections` (a SnapshotSections mask; the header, directory, and
  /// metadata are always checked). The net shard worker uses this to mmap
  /// just the in-CSR + alias arena it walks against.
  static StatusOr<std::shared_ptr<const SnapshotView>> Open(
      const std::string& path, uint32_t sections);

  ~SnapshotView();
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  std::span<const uint64_t> out_offsets() const { return out_offsets_; }
  std::span<const NodeId> out_targets() const { return out_targets_; }
  std::span<const uint64_t> in_offsets() const { return in_offsets_; }
  std::span<const NodeId> in_targets() const { return in_targets_; }
  std::span<const uint64_t> arena_offsets() const { return arena_offsets_; }
  std::span<const AliasSlot> arena_slots() const { return arena_slots_; }
  std::span<const double> diagonal() const { return diagonal_; }

  /// SimRank parameters of the embedded D-vector.
  const SimRankParams& params() const { return params_; }
  const SnapshotMetadata& metadata() const { return metadata_; }

  /// Total bytes of the underlying file.
  uint64_t file_bytes() const { return size_; }

  /// 64-bit identity of the artifact, derived from the header + directory
  /// CRC (which covers every section checksum) and the file size — any
  /// byte-level change to the snapshot changes it. Independent of the
  /// section mask the view was opened with; the net handshake pins it so a
  /// coordinator and its workers provably serve the same artifact.
  uint64_t fingerprint() const { return fingerprint_; }

  /// The SnapshotSections mask this view was opened with.
  uint32_t sections() const { return sections_; }

  /// True when the spans alias an mmap (false on the heap fallback).
  bool mmapped() const { return mmapped_; }

  /// True when the snapshot carries the kBlockIndex section. Old-format
  /// artifacts return false; the out-of-core layer falls back to
  /// whole-file residency for them (DESIGN.md section 14).
  bool has_block_index() const { return !blocks_.empty(); }

  /// The decoded block layout (empty without a kBlockIndex section).
  std::span<const BlockExtent> blocks() const { return blocks_; }

  /// The target paged bytes per block the layout was cut at (0 without a
  /// kBlockIndex section). Carried so open-then-rewrite reproduces the
  /// identical layout.
  uint64_t block_target_bytes() const { return block_target_bytes_; }

  /// The locality reorder permutation, internal id -> external id (empty
  /// when the snapshot was written without reordering). Validated as a
  /// bijection at open.
  std::span<const NodeId> permutation() const { return permutation_; }

 private:
  SnapshotView() = default;

  Status Validate(const std::string& path, uint32_t sections);

  const char* data_ = nullptr;
  uint64_t size_ = 0;
  uint64_t fingerprint_ = 0;
  uint32_t sections_ = kSnapshotAll;
  bool mmapped_ = false;
  std::string heap_buffer_;  // backing store on the no-mmap fallback

  NodeId num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  SimRankParams params_;
  SnapshotMetadata metadata_;

  std::span<const uint64_t> out_offsets_;
  std::span<const NodeId> out_targets_;
  std::span<const uint64_t> in_offsets_;
  std::span<const NodeId> in_targets_;
  std::span<const uint64_t> arena_offsets_;
  std::span<const AliasSlot> arena_slots_;
  std::span<const double> diagonal_;
  std::span<const NodeId> permutation_;
  std::vector<BlockExtent> blocks_;
  uint64_t block_target_bytes_ = 0;
};

/// One row of a snapshot's section directory, as InspectSnapshot reports
/// it (the `snapshot-info` CLI subcommand renders these).
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;        // "out_offsets", ..., "unknown"
  uint32_t elem_size = 0;  // element size in bytes
  uint64_t offset = 0;     // payload offset from file start
  uint64_t length = 0;     // payload length in bytes
  uint32_t crc = 0;        // stored CRC-32
  bool crc_ok = false;     // stored CRC matches the payload bytes
};

/// A snapshot's directory, decoded for inspection. Unlike SnapshotView::
/// Open this is diagnostic-grade: CRC mismatches and malformed sections
/// are *reported* (crc_ok = false, sections possibly flagged) instead of
/// failing the call, so an operator can inspect a damaged artifact. Only
/// an unreadable file, a foreign magic/endianness, or a directory that
/// does not fit the file fails.
struct SnapshotInfo {
  uint32_t format_version = 0;
  uint32_t num_sections = 0;
  uint64_t file_bytes = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  bool header_crc_ok = false;  // header + directory checksum
  bool has_block_index = false;
  bool has_permutation = false;
  uint64_t block_count = 0;  // decoded from kBlockIndex when present
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads and decodes `path`'s header and section directory (see
/// SnapshotInfo).
StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Test hook: when set, every madvise the snapshot layer issues reports
/// failure. Open and Write must still succeed — the hints are
/// best-effort — which is exactly what the hook lets a test assert.
void SetSnapshotMadviseFailForTest(bool fail);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SNAPSHOT_SNAPSHOT_H_
