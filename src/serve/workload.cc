#include "serve/workload.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/string_util.h"

namespace cloudwalker {

Status WorkloadSpec::Validate() const {
  if (num_requests < 1) {
    return Status::InvalidArgument("workload needs num_requests >= 1");
  }
  if (pair_fraction < 0.0 || pair_fraction > 1.0) {
    return Status::InvalidArgument("pair_fraction must be in [0, 1]");
  }
  if (source_fraction < 0.0 || source_fraction > 1.0) {
    return Status::InvalidArgument("source_fraction must be in [0, 1]");
  }
  if (ppr_fraction < 0.0 || ppr_fraction > 1.0) {
    return Status::InvalidArgument("ppr_fraction must be in [0, 1]");
  }
  if (n2v_fraction < 0.0 || n2v_fraction > 1.0) {
    return Status::InvalidArgument("n2v_fraction must be in [0, 1]");
  }
  if (pair_fraction + source_fraction + ppr_fraction + n2v_fraction > 1.0) {
    return Status::InvalidArgument(
        "request-kind fractions must not exceed 1 in total");
  }
  if (skew == WorkloadSkew::kZipf && !(zipf_theta > 0.0)) {
    return Status::InvalidArgument("zipf_theta must be > 0");
  }
  return Status::Ok();
}

ZipfSampler::ZipfSampler(NodeId num_nodes, double theta) {
  cdf_.resize(std::max<NodeId>(num_nodes, 1));
  double total = 0.0;
  for (size_t r = 0; r < cdf_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

NodeId ZipfSampler::Sample(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<NodeId>(it - cdf_.begin());
}

StatusOr<std::vector<QueryRequest>> GenerateWorkload(
    NodeId num_nodes, const WorkloadSpec& spec) {
  CW_RETURN_IF_ERROR(spec.Validate());
  if (num_nodes == 0) {
    return Status::InvalidArgument("workload needs a non-empty graph");
  }

  // Independent streams for node choice and request-type choice, so e.g.
  // changing pair_fraction does not reshuffle which sources are hot.
  Xoshiro256 node_rng = Xoshiro256::Derive(spec.seed, /*stream=*/1);
  Xoshiro256 type_rng = Xoshiro256::Derive(spec.seed, /*stream=*/2);
  std::optional<ZipfSampler> zipf;  // the O(n) CDF only when actually used
  if (spec.skew == WorkloadSkew::kZipf) zipf.emplace(num_nodes, spec.zipf_theta);
  const auto draw_node = [&]() -> NodeId {
    return zipf.has_value()
               ? zipf->Sample(node_rng)
               : static_cast<NodeId>(node_rng.UniformInt32(num_nodes));
  };

  std::vector<QueryRequest> requests;
  requests.reserve(spec.num_requests);
  for (uint64_t r = 0; r < spec.num_requests; ++r) {
    // One draw splits [0, 1) into pair / source / ppr / n2v / top-k
    // bands, so the stream stays deterministic as fractions change (and
    // new bands at fraction 0 leave old streams byte-identical).
    const double band = type_rng.NextDouble();
    double edge = spec.pair_fraction;
    if (band < edge) {
      requests.push_back(QueryRequest::Pair(draw_node(), draw_node()));
    } else if (band < (edge += spec.source_fraction)) {
      requests.push_back(QueryRequest::SingleSource(draw_node()));
    } else if (band < (edge += spec.ppr_fraction)) {
      requests.push_back(
          QueryRequest::PersonalizedPageRank(draw_node(), spec.topk));
    } else if (band < (edge += spec.n2v_fraction)) {
      requests.push_back(QueryRequest::Node2Vec(draw_node(), spec.topk));
    } else {
      requests.push_back(QueryRequest::SourceTopK(draw_node(), spec.topk));
    }
  }
  return requests;
}

Status SaveWorkloadText(const std::vector<QueryRequest>& requests,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# cloudwalker workload: " << requests.size() << " requests\n";
  for (const QueryRequest& r : requests) {
    // The verb vocabulary is QueryKindToString — one definition shared
    // with the loader, so the format cannot silently fork.
    switch (r.kind) {
      case QueryKind::kPair:
        out << QueryKindToString(r.kind) << " " << r.a << " " << r.b
            << "\n";
        break;
      case QueryKind::kSingleSource:
        out << QueryKindToString(r.kind) << " " << r.a << "\n";
        break;
      case QueryKind::kSourceTopK:
      case QueryKind::kPersonalizedPageRank:
      case QueryKind::kNode2Vec:
        out << QueryKindToString(r.kind) << " " << r.a << " " << r.k
            << "\n";
        break;
      case QueryKind::kAllPairsTopK:
        return Status::InvalidArgument(
            "all-pairs requests have no workload-file representation");
    }
  }
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

namespace {

// One whitespace token parsed as a 32-bit unsigned value. Rejects
// negatives, non-numeric junk, and 64-bit overflow with the reason — the
// loader wraps it with <path>:<line> so a typo in a replay file names its
// exact location instead of being skipped or mangled.
Status ParseU32Field(std::istringstream& fields, const char* what,
                     uint32_t* out) {
  std::string token;
  if (!(fields >> token)) {
    return Status::InvalidArgument(std::string("missing ") + what);
  }
  uint64_t value = 0;
  size_t used = 0;
  try {
    if (token.empty() || token[0] == '-') throw std::invalid_argument(token);
    value = std::stoull(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size()) {
    return Status::InvalidArgument(std::string(what) + " '" + token +
                                   "' is not a non-negative integer");
  }
  if (value > 0xffffffffull) {
    return Status::InvalidArgument(std::string(what) + " '" + token +
                                   "' exceeds 32 bits");
  }
  *out = static_cast<uint32_t>(value);
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<QueryRequest>> LoadWorkloadText(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<QueryRequest> requests;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto bad = [&](const std::string& what) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + what);
    };
    std::istringstream fields{std::string(stripped)};
    std::string verb;
    fields >> verb;
    // Verb first, then verb-specific arity — an unknown verb is reported
    // as such even when the rest of the line would not parse either.
    uint32_t a = 0, b = 0;
    if (verb == QueryKindToString(QueryKind::kPair)) {
      Status s = ParseU32Field(fields, "node i", &a);
      if (s.ok()) s = ParseU32Field(fields, "node j", &b);
      if (!s.ok()) {
        return bad("pair " + s.message() + " (usage: pair <i> <j>)");
      }
      requests.push_back(QueryRequest::Pair(a, b));
    } else if (verb == QueryKindToString(QueryKind::kSourceTopK)) {
      Status s = ParseU32Field(fields, "source node", &a);
      if (s.ok()) s = ParseU32Field(fields, "k", &b);
      if (!s.ok()) {
        return bad("topk " + s.message() + " (usage: topk <source> <k>)");
      }
      requests.push_back(QueryRequest::SourceTopK(a, b));
    } else if (verb == QueryKindToString(QueryKind::kSingleSource)) {
      const Status s = ParseU32Field(fields, "source node", &a);
      if (!s.ok()) {
        return bad("source " + s.message() + " (usage: source <q>)");
      }
      requests.push_back(QueryRequest::SingleSource(a));
    } else if (verb == QueryKindToString(QueryKind::kPersonalizedPageRank)) {
      Status s = ParseU32Field(fields, "source node", &a);
      if (s.ok()) s = ParseU32Field(fields, "k", &b);
      if (!s.ok()) {
        return bad("ppr " + s.message() + " (usage: ppr <source> <k>)");
      }
      requests.push_back(QueryRequest::PersonalizedPageRank(a, b));
    } else if (verb == QueryKindToString(QueryKind::kNode2Vec)) {
      Status s = ParseU32Field(fields, "source node", &a);
      if (s.ok()) s = ParseU32Field(fields, "k", &b);
      if (!s.ok()) {
        return bad("n2v " + s.message() + " (usage: n2v <source> <k>)");
      }
      requests.push_back(QueryRequest::Node2Vec(a, b));
    } else {
      return bad("unknown verb '" + verb +
                 "' (expected pair | topk | source | ppr | n2v)");
    }
    std::string extra;
    if (fields >> extra) {
      return bad("trailing content '" + extra + "' after " + verb);
    }
  }
  return requests;
}

}  // namespace cloudwalker
