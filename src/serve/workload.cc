#include "serve/workload.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/string_util.h"

namespace cloudwalker {

Status WorkloadSpec::Validate() const {
  if (num_requests < 1) {
    return Status::InvalidArgument("workload needs num_requests >= 1");
  }
  if (pair_fraction < 0.0 || pair_fraction > 1.0) {
    return Status::InvalidArgument("pair_fraction must be in [0, 1]");
  }
  if (skew == WorkloadSkew::kZipf && !(zipf_theta > 0.0)) {
    return Status::InvalidArgument("zipf_theta must be > 0");
  }
  return Status::Ok();
}

ZipfSampler::ZipfSampler(NodeId num_nodes, double theta) {
  cdf_.resize(std::max<NodeId>(num_nodes, 1));
  double total = 0.0;
  for (size_t r = 0; r < cdf_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

NodeId ZipfSampler::Sample(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<NodeId>(it - cdf_.begin());
}

StatusOr<std::vector<ServeRequest>> GenerateWorkload(
    NodeId num_nodes, const WorkloadSpec& spec) {
  CW_RETURN_IF_ERROR(spec.Validate());
  if (num_nodes == 0) {
    return Status::InvalidArgument("workload needs a non-empty graph");
  }

  // Independent streams for node choice and request-type choice, so e.g.
  // changing pair_fraction does not reshuffle which sources are hot.
  Xoshiro256 node_rng = Xoshiro256::Derive(spec.seed, /*stream=*/1);
  Xoshiro256 type_rng = Xoshiro256::Derive(spec.seed, /*stream=*/2);
  std::optional<ZipfSampler> zipf;  // the O(n) CDF only when actually used
  if (spec.skew == WorkloadSkew::kZipf) zipf.emplace(num_nodes, spec.zipf_theta);
  const auto draw_node = [&]() -> NodeId {
    return zipf.has_value()
               ? zipf->Sample(node_rng)
               : static_cast<NodeId>(node_rng.UniformInt32(num_nodes));
  };

  std::vector<ServeRequest> requests;
  requests.reserve(spec.num_requests);
  for (uint64_t r = 0; r < spec.num_requests; ++r) {
    if (type_rng.Bernoulli(spec.pair_fraction)) {
      requests.push_back(ServeRequest::Pair(draw_node(), draw_node()));
    } else {
      requests.push_back(ServeRequest::TopK(draw_node(), spec.topk));
    }
  }
  return requests;
}

Status SaveWorkloadText(const std::vector<ServeRequest>& requests,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# cloudwalker workload: " << requests.size() << " requests\n";
  for (const ServeRequest& r : requests) {
    if (r.type == ServeRequestType::kPair) {
      out << "pair " << r.a << " " << r.b << "\n";
    } else {
      out << "topk " << r.a << " " << r.k << "\n";
    }
  }
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

StatusOr<std::vector<ServeRequest>> LoadWorkloadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<ServeRequest> requests;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string verb;
    uint64_t x = 0, y = 0;
    fields >> verb >> x >> y;
    if (fields.fail()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected '<verb> <a> <b>'");
    }
    if (x > 0xffffffffull || y > 0xffffffffull) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": value exceeds 32 bits");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": trailing content '" + extra + "'");
    }
    if (verb == "pair") {
      requests.push_back(ServeRequest::Pair(static_cast<NodeId>(x),
                                            static_cast<NodeId>(y)));
    } else if (verb == "topk") {
      requests.push_back(ServeRequest::TopK(static_cast<NodeId>(x),
                                            static_cast<uint32_t>(y)));
    } else {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": unknown verb '" + verb + "'");
    }
  }
  return requests;
}

}  // namespace cloudwalker
