// Serving-side metrics: a lock-free latency histogram and the aggregate
// ServeStats snapshot (p50/p95/p99, QPS, cache hit rate) reported by
// QueryService. See DESIGN.md section 6.4.

#ifndef CLOUDWALKER_SERVE_STATS_H_
#define CLOUDWALKER_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace cloudwalker {

/// Concurrent latency histogram with geometric buckets spanning
/// [1 us, ~100 s). Record() is wait-free (one relaxed atomic increment);
/// quantiles are read from a snapshot of the buckets and are accurate to
/// within one bucket width (~34% relative — plenty for p50/p95/p99
/// reporting; recorded latencies are wall-clock and inherently noisy).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  /// Records one latency observation (in seconds; clamped into range).
  void Record(double seconds);

  /// Number of recorded observations.
  uint64_t count() const;

  /// The q-quantile (q in [0, 1]) in seconds: the geometric midpoint of
  /// the bucket holding the q-th observation. Returns 0 when empty.
  double Quantile(double q) const;

  /// Arithmetic mean of the recorded observations, in seconds.
  double Mean() const;

  /// Zeroes every bucket.
  void Reset();

 private:
  static constexpr int kNumBuckets = 64;
  static constexpr double kMinSeconds = 1e-6;
  // Bucket i covers [kMinSeconds * kGrowth^i, kMinSeconds * kGrowth^(i+1));
  // kGrowth^64 ~ 1e8, so the top bucket ends near 100 s.
  static constexpr double kGrowth = 1.3372;

  static int BucketFor(double seconds);
  static double BucketMidpoint(int bucket);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_seconds_{0.0};
};

/// Point-in-time aggregate serving metrics (returned by
/// QueryService::Stats).
struct ServeStats {
  uint64_t pair_queries = 0;       // completed kPair requests
  uint64_t source_queries = 0;     // completed kSingleSource requests
  uint64_t topk_queries = 0;       // completed kSourceTopK requests
  uint64_t all_pairs_queries = 0;  // completed kAllPairsTopK requests
  uint64_t ppr_queries = 0;        // completed kPersonalizedPageRank requests
  uint64_t n2v_queries = 0;        // completed kNode2Vec requests
  uint64_t errors = 0;             // requests that returned a non-OK status
  uint64_t computed = 0;           // requests that ran a query kernel
  uint64_t dedup_shared = 0;       // requests that joined an in-flight twin
  uint64_t rejected = 0;           // kResourceExhausted at admission
  uint64_t deadline_exceeded = 0;  // completed with kDeadlineExceeded
  uint64_t cancelled = 0;          // completed with kCancelled
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;    // resident entries at snapshot time
  uint64_t snapshot_version = 0;  // version label serving new admissions
  uint64_t snapshot_epoch = 0;    // its epoch (cache-key generation)
  double elapsed_seconds = 0.0;  // since construction / ResetStats
  double qps = 0.0;              // completed requests / elapsed_seconds
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  /// Completed requests of every kind. Queue-full rejections are NOT
  /// included (their futures complete with kResourceExhausted, counted in
  /// `rejected`/`errors` only) — microsecond rejections would otherwise
  /// drag the latency histogram and QPS toward zero-cost work and make
  /// overload look fast.
  uint64_t total_queries() const {
    return pair_queries + source_queries + topk_queries + all_pairs_queries +
           ppr_queries + n2v_queries;
  }

  /// Hits / (hits + misses), or 0 when the cache saw no lookups.
  double CacheHitRate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_STATS_H_
