// SnapshotRegistry — named, versioned engine snapshots behind the serving
// layer, with atomic hot swap (DESIGN.md section 9).
//
// The registry holds shared_ptr<const CloudWalker> instances (heap builds
// or mmap-opened snapshots — the pointer owns everything either way) under
// caller-chosen version numbers. Publish() makes a version current and
// assigns it a monotonically increasing *epoch*; readers pin the current
// entry with one shared_ptr copy (RCU by refcount):
//
//   SnapshotRegistry registry;
//   registry.Publish(1, v1);                 // epoch 1
//   auto pinned = registry.Current();        // readers pin
//   registry.Publish(2, v2);                 // epoch 2; v1 readers finish
//   registry.Retire(1);                      // drop the registry's ref
//
// An in-flight request keeps its pinned entry alive until it completes, so
// Retire() never yanks memory from under a running walk — the last
// shared_ptr out the door frees the engine (and unmaps its snapshot).
// QueryService keys its result cache by the pinned epoch, so a swap can
// never serve one version's scores for another (the cache-versioning
// invariant of DESIGN.md section 9).

#ifndef CLOUDWALKER_SERVE_SNAPSHOT_REGISTRY_H_
#define CLOUDWALKER_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/cloudwalker.h"

namespace cloudwalker {

/// Thread-safe registry of engine versions. All methods may be called from
/// any thread; Current() is one mutex-protected shared_ptr copy.
class SnapshotRegistry {
 public:
  /// One published engine version. Immutable once published; shared with
  /// every request pinned to it.
  struct Entry {
    uint64_t version = 0;  // caller-chosen label
    uint64_t epoch = 0;    // registry-assigned, strictly increasing
    std::shared_ptr<const CloudWalker> walker;
  };

  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Publishes `walker` under `version` and makes it current. Returns the
  /// assigned epoch. Re-publishing an existing version replaces it (with a
  /// fresh epoch — epochs never repeat, so stale cache entries stay dead).
  /// Fails on a null walker.
  StatusOr<uint64_t> Publish(uint64_t version,
                             std::shared_ptr<const CloudWalker> walker);

  /// Publish under the next free version label (max resident + 1, or 1 on
  /// an empty registry), chosen atomically with the publication.
  /// `version_out` (optional) receives the label.
  StatusOr<uint64_t> PublishNext(std::shared_ptr<const CloudWalker> walker,
                                 uint64_t* version_out = nullptr);

  /// Drops the registry's reference to `version`. In-flight requests
  /// pinned to it are unaffected. The current version cannot be retired —
  /// publish a successor first.
  Status Retire(uint64_t version);

  /// The current entry, or null when nothing has been published.
  std::shared_ptr<const Entry> Current() const;

  /// The entry of `version`, or null when absent.
  std::shared_ptr<const Entry> Get(uint64_t version) const;

  /// All resident version labels, ascending.
  std::vector<uint64_t> Versions() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<const Entry>> entries_;
  std::shared_ptr<const Entry> current_;
  uint64_t next_epoch_ = 1;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_SNAPSHOT_REGISTRY_H_
