#include "serve/query_service.h"

#include <utility>

namespace cloudwalker {

QueryService::QueryService(const CloudWalker* cloudwalker,
                           const ServeOptions& options, ThreadPool* pool)
    : cloudwalker_(cloudwalker), options_(options), pool_(pool) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedLruCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
}

ServeResponse QueryService::Pair(NodeId i, NodeId j) {
  WallTimer timer;
  ServeResponse response;
  auto score = cloudwalker_->SinglePair(i, j, options_.query);
  computed_.fetch_add(1, std::memory_order_relaxed);
  if (score.ok()) {
    response.score = *score;
  } else {
    response.status = score.status();
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  response.latency_seconds = timer.Seconds();
  latencies_.Record(response.latency_seconds);
  pair_queries_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

ServeResponse QueryService::SourceTopK(NodeId source, uint32_t k) {
  WallTimer timer;
  ServeResponse response;
  AnswerTopK(source, k, &response);
  if (!response.status.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
  response.latency_seconds = timer.Seconds();
  latencies_.Record(response.latency_seconds);
  topk_queries_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

void QueryService::AnswerTopK(NodeId source, uint32_t k,
                              ServeResponse* response) {
  const uint64_t key = PackTopKKey(source, k);
  if (cache_ != nullptr) {
    if (ShardedLruCache::Value hit = cache_->Get(key)) {
      response->topk = std::move(hit);
      response->cache_hit = true;
      return;
    }
  }

  std::shared_ptr<InFlight> state;
  if (options_.dedup_in_flight) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      state = it->second;  // follower: someone else is computing this key
    } else {
      inflight_.emplace(key, std::make_shared<InFlight>());
    }
  }
  if (state != nullptr) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    response->status = state->status;
    response->topk = state->result;
    response->deduped = true;
    dedup_shared_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Leader (or dedup disabled): run the kernel.
  auto top = cloudwalker_->SingleSourceTopK(source, k, options_.query);
  computed_.fetch_add(1, std::memory_order_relaxed);
  if (top.ok()) {
    response->topk = std::make_shared<const std::vector<ScoredNode>>(
        std::move(top).value());
    if (cache_ != nullptr) cache_->Put(key, response->topk);
  } else {
    response->status = top.status();
  }

  if (options_.dedup_in_flight) {
    std::shared_ptr<InFlight> own;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto it = inflight_.find(key);
      own = std::move(it->second);
      inflight_.erase(it);
    }
    std::lock_guard<std::mutex> lock(own->mu);
    own->done = true;
    own->status = response->status;
    own->result = response->topk;
    own->cv.notify_all();
  }
}

ServeResponse QueryService::Execute(const ServeRequest& request) {
  switch (request.type) {
    case ServeRequestType::kPair:
      return Pair(request.a, request.b);
    case ServeRequestType::kSourceTopK:
      return SourceTopK(request.a, request.k);
  }
  ServeResponse response;
  response.status = Status::InvalidArgument("unknown request type");
  return response;
}

std::vector<ServeResponse> QueryService::ExecuteBatch(
    const std::vector<ServeRequest>& requests) {
  std::vector<ServeResponse> responses(requests.size());
  // grain == 1: every request is an independently claimed unit of work, so
  // identical sources landing on different threads overlap and dedup.
  ParallelFor(pool_, 0, requests.size(), /*grain=*/1,
              [&](uint64_t begin, uint64_t end) {
                for (uint64_t r = begin; r < end; ++r) {
                  responses[r] = Execute(requests[r]);
                }
              });
  return responses;
}

ServeStats QueryService::Stats() const {
  ServeStats s;
  s.pair_queries = pair_queries_.load(std::memory_order_relaxed);
  s.topk_queries = topk_queries_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.dedup_shared = dedup_shared_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (cache_ != nullptr) {
      const ShardedLruCache::Counters c = cache_->counters();
      s.cache_hits = c.hits - cache_baseline_.hits;
      s.cache_misses = c.misses - cache_baseline_.misses;
      s.cache_evictions = c.evictions - cache_baseline_.evictions;
      s.cache_entries = cache_->size();
    }
    s.elapsed_seconds = window_.Seconds();
  }
  if (s.elapsed_seconds > 0.0) {
    s.qps = static_cast<double>(s.total_queries()) / s.elapsed_seconds;
  }
  s.p50_ms = latencies_.Quantile(0.50) * 1e3;
  s.p95_ms = latencies_.Quantile(0.95) * 1e3;
  s.p99_ms = latencies_.Quantile(0.99) * 1e3;
  s.mean_ms = latencies_.Mean() * 1e3;
  return s;
}

void QueryService::ResetStats() {
  pair_queries_.store(0, std::memory_order_relaxed);
  topk_queries_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  computed_.store(0, std::memory_order_relaxed);
  dedup_shared_.store(0, std::memory_order_relaxed);
  latencies_.Reset();
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (cache_ != nullptr) cache_baseline_ = cache_->counters();
  window_.Restart();
}

}  // namespace cloudwalker
