#include "serve/query_service.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "engine/parallel_walk.h"

namespace cloudwalker {
namespace {

// Exact 128-bit cache/dedup key for a top-k answer: the snapshot epoch,
// kind tag, and interned options id in the high word, (source, k) in the
// low word. No two requests that could answer differently ever share a
// key — the epoch field (28 bits; epochs are assigned sequentially, so
// exhausting it would take 268M publishes against one service) is what
// makes a hot swap unable to serve one version's scores for another.
CacheKey TopKKey(uint64_t epoch, QueryKind kind, NodeId source, uint32_t k,
                 uint32_t options_id) {
  return CacheKey{
      (epoch << 36) | (static_cast<uint64_t>(kind) << 32) | options_id,
      (static_cast<uint64_t>(source) << 32) | k};
}

// The kinds served through the (source, k) top-k cache + dedup path: all
// carry a TopKPtr payload and are keyed by the same (source, k) pair, so
// one cache and one in-flight table serve all three (the 4-bit kind tag
// in the key keeps their answers apart).
bool CacheableTopKKind(QueryKind kind) {
  return kind == QueryKind::kSourceTopK ||
         kind == QueryKind::kPersonalizedPageRank ||
         kind == QueryKind::kNode2Vec;
}

}  // namespace

bool QueryFuture::done() const {
  CW_CHECK(valid());
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

QueryResponse QueryFuture::Wait() const {
  CW_CHECK(valid());
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->response;
}

bool QueryFuture::WaitFor(double seconds) const {
  CW_CHECK(valid());
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                             [this] { return state_->done; });
}

void QueryFuture::Cancel() const {
  CW_CHECK(valid());
  state_->cancel.Cancel();
}

std::vector<QueryResponse> WhenAll(const std::vector<QueryFuture>& futures) {
  std::vector<QueryResponse> responses;
  responses.reserve(futures.size());
  for (const QueryFuture& f : futures) {
    if (f.valid()) {
      responses.push_back(f.Wait());
    } else {
      QueryResponse invalid;
      invalid.status = Status::Internal("invalid (default) QueryFuture");
      responses.push_back(std::move(invalid));
    }
  }
  return responses;
}

namespace {

// ServeOptions::walk_threads > 1: re-back the engine with the parallel
// walk executor unless it already routes walks through a backend of its
// own (a sharded or pre-parallelized instance — wrapping again would stack
// pools without stacking work). Bit-identical answers by construction, so
// publishing the wrapper instead of the original changes nothing about
// cache keys, dedup, or epochs. A wrap failure (e.g. an empty graph)
// serves the original engine unmodified.
std::shared_ptr<const CloudWalker> MaybeParallelize(
    std::shared_ptr<const CloudWalker> walker, int walk_threads) {
  if (walk_threads <= 1 || walker == nullptr ||
      walker->walk_backend() != nullptr) {
    return walker;
  }
  ParallelWalkOptions parallel_options;
  parallel_options.num_threads = walk_threads;
  StatusOr<std::shared_ptr<const CloudWalker>> parallel =
      CloudWalker::Parallelize(walker, parallel_options);
  if (!parallel.ok()) return walker;
  return std::move(parallel).value();
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const CloudWalker> cloudwalker,
                           const ServeOptions& options, ThreadPool* pool)
    : options_(options), pool_(pool) {
  CW_CHECK(cloudwalker != nullptr);
  CW_CHECK(registry_
               .Publish(1, MaybeParallelize(std::move(cloudwalker),
                                            options_.walk_threads))
               .ok());
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedLruCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  interned_options_.push_back(options_.query);  // id 0 = service defaults
}

QueryService::QueryService(const CloudWalker* cloudwalker,
                           const ServeOptions& options, ThreadPool* pool)
    : QueryService(
          // Non-owning alias: the borrowed facade must outlive the service.
          std::shared_ptr<const CloudWalker>(cloudwalker,
                                             [](const CloudWalker*) {}),
          options, pool) {}

StatusOr<uint64_t> QueryService::Publish(
    std::shared_ptr<const CloudWalker> walker) {
  return registry_.PublishNext(
      MaybeParallelize(std::move(walker), options_.walk_threads));
}

QueryService::~QueryService() {
  // Outstanding tasks reference this service; drain before the members go.
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

uint32_t QueryService::InternOptions(const QueryOptions& options) {
  // Fast path for the dominant case — the service defaults — so default
  // traffic never serializes on intern_mu_ (options_ is immutable after
  // construction).
  if (options == options_.query) return 0;
  const uint64_t hash = QueryOptionsFingerprint(options);
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto bucket = intern_index_.find(hash);
  if (bucket != intern_index_.end()) {
    for (const uint32_t id : bucket->second) {
      if (interned_options_[id] == options) return id;
    }
  }
  // Cap the table: a client streaming unbounded distinct overrides gets
  // correct-but-uncached answers instead of growing memory forever.
  if (interned_options_.size() >= kMaxInternedOptions) {
    return kUncachedOptionsId;
  }
  const uint32_t id = static_cast<uint32_t>(interned_options_.size());
  interned_options_.push_back(options);
  intern_index_[hash].push_back(id);
  return id;
}

QueryFuture QueryService::Submit(const QueryRequest& request) {
  return SubmitInternal(request, /*block_on_full=*/false);
}

QueryFuture QueryService::SubmitInternal(const QueryRequest& request,
                                         bool block_on_full) {
  auto state = std::make_shared<State>();  // the admission timer starts now
  QueryFuture future(state);
  state->cancel.SetDeadline(request.timeout_seconds);

  // Pin the current snapshot: this request executes, validates, and caches
  // against exactly this engine version even if a new one is published
  // while it waits in the queue (the pin keeps the old version alive).
  const SnapshotPtr snapshot = registry_.Current();
  CW_CHECK(snapshot != nullptr);  // the constructors always publish one

  // Materialize the effective options so every later stage (cache keying,
  // kernel execution) sees one explicit option set.
  QueryRequest task = request;
  if (!task.options.has_value()) task.options = options_.query;

  // Admission step 1: validate once, centrally, against the pinned
  // version's node space.
  const Status valid = ValidateQueryRequest(
      task, snapshot->walker->graph().num_nodes(), options_.query);
  if (!valid.ok()) {
    QueryResponse response;
    response.kind = task.kind;
    response.status = valid;
    Publish(state, std::move(response));
    return future;
  }

  // Admission fast path: a resident top-k answer needs no queue slot, no
  // worker, and no kernel — serve it inline on the caller's thread, so
  // warm traffic bypasses the admission lock and the pool entirely. A
  // miss here is speculative (the worker re-probes authoritatively,
  // catching answers published while the request sat in the queue) and
  // is therefore not counted.
  if (CacheableTopKKind(task.kind) && cache_ != nullptr &&
      !state->cancel.ShouldStop()) {
    const uint32_t options_id = InternOptions(*task.options);
    if (options_id != kUncachedOptionsId) {
      if (ShardedLruCache::Value hit =
              cache_->Get(TopKKey(snapshot->epoch, task.kind, task.a, task.k,
                                  options_id),
                          /*count_miss=*/false)) {
        QueryResponse response;
        response.kind = task.kind;
        response.payload = TopKPtr(std::move(hit));
        response.cache_hit = true;
        Publish(state, std::move(response));
        return future;
      }
    }
  }

  // Admission step 2: charge the bounded queue.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (options_.max_queue_depth > 0) {
      if (block_on_full) {
        queue_cv_.wait(lock, [this] {
          return in_flight_ < options_.max_queue_depth;
        });
      } else if (in_flight_ >= options_.max_queue_depth) {
        lock.unlock();
        QueryResponse response;
        response.kind = task.kind;
        response.status = Status::ResourceExhausted(
            "serving queue full (" +
            std::to_string(options_.max_queue_depth) +
            " requests in flight)");
        Publish(state, std::move(response));
        return future;
      }
    }
    ++in_flight_;
  }

  if (pool_ == nullptr) {
    RunTask(state, task, snapshot);
  } else {
    pool_->Submit(
        [this, state, task, snapshot] { RunTask(state, task, snapshot); });
  }
  return future;
}

void QueryService::RunTask(const std::shared_ptr<State>& state,
                           const QueryRequest& request,
                           const SnapshotPtr& snapshot) {
  QueryResponse response;
  response.kind = request.kind;
  const CancelToken* cancel = &state->cancel;
  if (cancel->ShouldStop()) {
    // Expired in the queue (or cancelled before a worker got to it):
    // complete without running a kernel.
    response.status = cancel->ToStatus();
  } else if (CacheableTopKKind(request.kind)) {
    AnswerTopK(request, snapshot, cancel, &response);
  } else {
    // kPair / kSingleSource / kAllPairsTopK run the facade directly (no
    // caching: pair answers are cheap relative to their O(n^2) key space,
    // full vectors and all-pairs sweeps are too large to retain).
    // All-pairs runs serially inside this worker — re-entering the
    // service pool from a worker would deadlock its completion barrier.
    response =
        snapshot->walker->Execute(request, /*pool=*/nullptr, cancel);
    if (response.status.ok()) {
      computed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Publish(state, std::move(response));
  {
    // Notify under the lock: once the destructor's drain predicate sees
    // in_flight_ == 0 it may destroy the condition variable, so the
    // notify must complete before this critical section is released.
    std::lock_guard<std::mutex> lock(queue_mu_);
    --in_flight_;
    queue_cv_.notify_all();
  }
}

void QueryService::AnswerTopK(const QueryRequest& request,
                              const SnapshotPtr& snapshot,
                              const CancelToken* cancel,
                              QueryResponse* response) {
  const uint32_t options_id = InternOptions(*request.options);
  if (options_id == kUncachedOptionsId) {
    // Intern table full: no exact key, so no cache and no dedup — but
    // still a correct (freshly computed) answer.
    QueryResponse computed =
        snapshot->walker->Execute(request, /*pool=*/nullptr, cancel);
    response->status = computed.status;
    response->stats = computed.stats;
    if (computed.status.ok()) {
      computed_.fetch_add(1, std::memory_order_relaxed);
      response->payload = computed.topk();
    }
    return;
  }
  const CacheKey key =
      TopKKey(snapshot->epoch, request.kind, request.a, request.k, options_id);
  while (true) {
    if (cache_ != nullptr) {
      if (ShardedLruCache::Value hit = cache_->Get(key)) {
        response->payload = TopKPtr(std::move(hit));
        response->cache_hit = true;
        return;
      }
    }

    std::shared_ptr<InFlight> follow;
    if (options_.dedup_in_flight) {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        follow = it->second;  // follower: someone else is computing this key
      } else {
        inflight_.emplace(key, std::make_shared<InFlight>());
      }
    }
    if (follow != nullptr) {
      {
        // Wait for the leader, but keep honoring *this* request's token:
        // a follower whose deadline passes (or that is cancelled) while
        // dedup-waiting gives up instead of sitting out the leader's
        // entire run. Polled at a coarse tick — the same order of
        // granularity as the kernel's per-level checkpoints.
        std::unique_lock<std::mutex> lock(follow->mu);
        while (!follow->done) {
          follow->cv.wait_for(lock, std::chrono::milliseconds(5));
          if (!follow->done && cancel->ShouldStop()) {
            response->status = cancel->ToStatus();
            return;
          }
        }
      }
      if (follow->status.ok()) {
        response->payload = follow->result;
        response->deduped = true;
        dedup_shared_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // The leader stopped on *its* deadline or cancellation — an error
      // that is per-request, not per-key, so it must not fan out. Retry
      // under this request's own token (which may have stopped too).
      if (cancel->ShouldStop()) {
        response->status = cancel->ToStatus();
        return;
      }
      continue;
    }

    // Leader (or dedup disabled): run the kernel through the facade.
    QueryResponse computed =
        snapshot->walker->Execute(request, /*pool=*/nullptr, cancel);
    response->status = computed.status;
    response->stats = computed.stats;
    if (computed.status.ok()) {
      computed_.fetch_add(1, std::memory_order_relaxed);
      response->payload = computed.topk();
      if (cache_ != nullptr) cache_->Put(key, computed.topk());
    }

    if (options_.dedup_in_flight) {
      std::shared_ptr<InFlight> own;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        auto it = inflight_.find(key);
        own = std::move(it->second);
        inflight_.erase(it);
      }
      std::lock_guard<std::mutex> lock(own->mu);
      own->done = true;
      own->status = response->status;
      own->result = computed.status.ok() ? computed.topk() : nullptr;
      own->cv.notify_all();
    }
    return;
  }
}

void QueryService::Publish(const std::shared_ptr<State>& state,
                           QueryResponse response) {
  // One clock for every requester: wall time since admission, so queue
  // wait and dedup wait are part of the reported latency.
  response.latency_seconds = state->admitted.Seconds();
  if (response.status.IsResourceExhausted()) {
    // Queue-full rejections complete their future but stay out of the
    // served-traffic accounting: a microsecond rejection in the latency
    // histogram (or in QPS) would make overload look *faster*.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
  } else {
    switch (response.kind) {
      case QueryKind::kPair:
        pair_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryKind::kSingleSource:
        source_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryKind::kSourceTopK:
        topk_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryKind::kAllPairsTopK:
        all_pairs_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryKind::kPersonalizedPageRank:
        ppr_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryKind::kNode2Vec:
        n2v_queries_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (!response.status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (response.status.IsDeadlineExceeded()) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status.IsCancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    latencies_.Record(response.latency_seconds);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return SubmitInternal(request, /*block_on_full=*/true).Wait();
}

QueryResponse QueryService::Pair(NodeId i, NodeId j) {
  return Execute(QueryRequest::Pair(i, j));
}

QueryResponse QueryService::SourceTopK(NodeId source, uint32_t k) {
  return Execute(QueryRequest::SourceTopK(source, k));
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  // Every request is an independently scheduled unit of work, so identical
  // sources landing on different workers overlap and dedup. Backpressure
  // (not rejection) keeps replayed batches lossless under a bounded queue.
  std::vector<QueryFuture> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(SubmitInternal(request, /*block_on_full=*/true));
  }
  return WhenAll(futures);
}

ServeStats QueryService::Stats() const {
  ServeStats s;
  s.pair_queries = pair_queries_.load(std::memory_order_relaxed);
  s.source_queries = source_queries_.load(std::memory_order_relaxed);
  s.topk_queries = topk_queries_.load(std::memory_order_relaxed);
  s.all_pairs_queries = all_pairs_queries_.load(std::memory_order_relaxed);
  s.ppr_queries = ppr_queries_.load(std::memory_order_relaxed);
  s.n2v_queries = n2v_queries_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.dedup_shared = dedup_shared_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  if (const SnapshotPtr current = registry_.Current()) {
    s.snapshot_version = current->version;
    s.snapshot_epoch = current->epoch;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (cache_ != nullptr) {
      const ShardedLruCache::Counters c = cache_->counters();
      s.cache_hits = c.hits - cache_baseline_.hits;
      s.cache_misses = c.misses - cache_baseline_.misses;
      s.cache_evictions = c.evictions - cache_baseline_.evictions;
      s.cache_entries = cache_->size();
    }
    s.elapsed_seconds = window_.Seconds();
  }
  if (s.elapsed_seconds > 0.0) {
    s.qps = static_cast<double>(s.total_queries()) / s.elapsed_seconds;
  }
  s.p50_ms = latencies_.Quantile(0.50) * 1e3;
  s.p95_ms = latencies_.Quantile(0.95) * 1e3;
  s.p99_ms = latencies_.Quantile(0.99) * 1e3;
  s.mean_ms = latencies_.Mean() * 1e3;
  return s;
}

void QueryService::ResetStats() {
  pair_queries_.store(0, std::memory_order_relaxed);
  source_queries_.store(0, std::memory_order_relaxed);
  topk_queries_.store(0, std::memory_order_relaxed);
  all_pairs_queries_.store(0, std::memory_order_relaxed);
  ppr_queries_.store(0, std::memory_order_relaxed);
  n2v_queries_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  computed_.store(0, std::memory_order_relaxed);
  dedup_shared_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  latencies_.Reset();
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (cache_ != nullptr) cache_baseline_ = cache_->counters();
  window_.Restart();
}

}  // namespace cloudwalker
