#include "serve/snapshot_registry.h"

#include <string>
#include <utility>

namespace cloudwalker {

StatusOr<uint64_t> SnapshotRegistry::Publish(
    uint64_t version, std::shared_ptr<const CloudWalker> walker) {
  if (walker == nullptr) {
    return Status::InvalidArgument("cannot publish a null engine");
  }
  auto entry = std::make_shared<Entry>();
  entry->version = version;
  entry->walker = std::move(walker);
  std::lock_guard<std::mutex> lock(mu_);
  entry->epoch = next_epoch_++;
  std::shared_ptr<const Entry> published = std::move(entry);
  entries_[version] = published;
  current_ = std::move(published);
  return current_->epoch;
}

StatusOr<uint64_t> SnapshotRegistry::PublishNext(
    std::shared_ptr<const CloudWalker> walker, uint64_t* version_out) {
  if (walker == nullptr) {
    return Status::InvalidArgument("cannot publish a null engine");
  }
  auto entry = std::make_shared<Entry>();
  entry->walker = std::move(walker);
  std::lock_guard<std::mutex> lock(mu_);
  entry->version = entries_.empty() ? 1 : entries_.rbegin()->first + 1;
  entry->epoch = next_epoch_++;
  if (version_out != nullptr) *version_out = entry->version;
  std::shared_ptr<const Entry> published = std::move(entry);
  entries_[published->version] = published;
  current_ = std::move(published);
  return current_->epoch;
}

Status SnapshotRegistry::Retire(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) {
    return Status::NotFound("no published version " +
                            std::to_string(version));
  }
  if (current_ != nullptr && current_->version == version) {
    return Status::FailedPrecondition(
        "version " + std::to_string(version) +
        " is current; publish a successor before retiring it");
  }
  entries_.erase(it);
  return Status::Ok();
}

std::shared_ptr<const SnapshotRegistry::Entry> SnapshotRegistry::Current()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<const SnapshotRegistry::Entry> SnapshotRegistry::Get(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(version);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<uint64_t> SnapshotRegistry::Versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [version, entry] : entries_) out.push_back(version);
  return out;
}

}  // namespace cloudwalker
