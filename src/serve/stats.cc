#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace cloudwalker {

int LatencyHistogram::BucketFor(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;
  const int b = static_cast<int>(std::log(seconds / kMinSeconds) /
                                 std::log(kGrowth));
  return std::clamp(b, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidpoint(int bucket) {
  // Geometric midpoint of [lo, lo * kGrowth).
  return kMinSeconds * std::pow(kGrowth, bucket + 0.5);
}

void LatencyHistogram::Record(double seconds) {
  buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  std::array<uint64_t, kNumBuckets> snap;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += snap[i];
    if (static_cast<double>(seen) >= target) return BucketMidpoint(i);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

double LatencyHistogram::Mean() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return sum_seconds_.load(std::memory_order_relaxed) /
         static_cast<double>(n);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_seconds_.store(0.0, std::memory_order_relaxed);
}

}  // namespace cloudwalker
