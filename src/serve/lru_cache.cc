#include "serve/lru_cache.h"

#include <algorithm>

namespace cloudwalker {

ShardedLruCache::ShardedLruCache(size_t capacity, int num_shards)
    : capacity_(std::max<size_t>(capacity, 1)) {
  const size_t n = std::clamp<size_t>(
      num_shards < 1 ? 1 : static_cast<size_t>(num_shards), 1, capacity_);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute the remainder so shard capacities sum to capacity_ exactly.
    shard->capacity = capacity_ / n + (s < capacity_ % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

int ShardedLruCache::ShardIndex(const CacheKey& key) const {
  return static_cast<int>(CacheKeyHash{}(key) % shards_.size());
}

ShardedLruCache::Value ShardedLruCache::Get(const CacheKey& key,
                                            bool count_miss) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ShardedLruCache::Put(const CacheKey& key, Value value) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedLruCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ShardedLruCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

ShardedLruCache::Counters ShardedLruCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace cloudwalker
