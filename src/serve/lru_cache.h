// Sharded LRU cache for single-source top-k answers.
//
// The key is a caller-packed 64-bit id (the serving layer packs
// (source, k) via PackTopKKey); the value is a shared, immutable top-k
// list so a cached answer can be fanned out to any number of concurrent
// readers without copying. Sharding bounds lock contention: a key maps
// to exactly one shard (by a SplitMix64-mixed hash), each shard holds an
// independent mutex + recency list, and the total capacity is divided
// across shards at construction (see DESIGN.md section 6.2).

#ifndef CLOUDWALKER_SERVE_LRU_CACHE_H_
#define CLOUDWALKER_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/queries.h"

namespace cloudwalker {

/// Packs a top-k cache key: the source node in the high 32 bits, k in the
/// low 32. Distinct (source, k) pairs never collide.
inline uint64_t PackTopKKey(NodeId source, uint32_t k) {
  return (static_cast<uint64_t>(source) << 32) | static_cast<uint64_t>(k);
}

/// Thread-safe LRU cache, sharded by key hash. Capacity is a hard bound on
/// the total number of resident entries (divided across shards, so one
/// shard's working set cannot starve the others).
class ShardedLruCache {
 public:
  /// Cached answers are shared and immutable.
  using Value = std::shared_ptr<const std::vector<ScoredNode>>;

  /// Monotonic counters, aggregated over all shards.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
  };

  /// `capacity` = max resident entries in total (>= 1); `num_shards` is
  /// clamped to [1, capacity] so every shard can hold at least one entry.
  explicit ShardedLruCache(size_t capacity, int num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value (promoting it to most-recently-used) or
  /// nullptr on miss.
  Value Get(uint64_t key);

  /// Inserts or overwrites `key`, evicting the shard's least-recently-used
  /// entry when the shard is full.
  void Put(uint64_t key, Value value);

  /// Drops every entry (counters are preserved).
  void Clear();

  /// Current number of resident entries (sums shard sizes; approximate
  /// under concurrent mutation).
  size_t size() const;

  /// Total configured capacity.
  size_t capacity() const { return capacity_; }

  /// Number of shards actually in use.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The shard a key maps to (exposed for tests).
  int ShardIndex(uint64_t key) const;

  /// Counter snapshot.
  Counters counters() const;

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used. The map points into the list.
    std::list<std::pair<uint64_t, Value>> lru;
    std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Value>>::iterator>
        index;
    size_t capacity = 0;
  };

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_LRU_CACHE_H_
