// Sharded LRU cache for single-source top-k answers.
//
// The key is a caller-packed 128-bit CacheKey — wide enough for the
// serving layer to pack (query kind, interned options id, source, k)
// losslessly, so two requests that could ever answer differently can
// never share an entry (the one-answer-per-key contract of DESIGN.md
// section 6.2). The value is a shared, immutable top-k list so a cached
// answer can be fanned out to any number of concurrent readers without
// copying. Sharding bounds lock contention: a key maps to exactly one
// shard (by a SplitMix64-mixed hash), each shard holds an independent
// mutex + recency list, and the total capacity is divided across shards
// at construction.

#ifndef CLOUDWALKER_SERVE_LRU_CACHE_H_
#define CLOUDWALKER_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/queries.h"

namespace cloudwalker {

/// A 128-bit exact cache key. The packing convention is the caller's; the
/// cache only needs equality and the hash below. Distinct packings never
/// collide — there is no lossy mixing on the lookup path.
struct CacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const CacheKey&) const = default;
};

/// Hash for CacheKey: both halves pass through a SplitMix64 finalizer so
/// the highly structured packed fields (node ids, small k, tiny option
/// ids) spread over buckets and shards.
struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t hi = key.hi;
    uint64_t lo = key.lo;
    return static_cast<size_t>(SplitMix64Next(&hi) ^ SplitMix64Next(&lo));
  }
};

/// Thread-safe LRU cache, sharded by key hash. Capacity is a hard bound on
/// the total number of resident entries (divided across shards, so one
/// shard's working set cannot starve the others).
class ShardedLruCache {
 public:
  /// Cached answers are shared and immutable.
  using Value = std::shared_ptr<const std::vector<ScoredNode>>;

  /// Monotonic counters, aggregated over all shards.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
  };

  /// `capacity` = max resident entries in total (>= 1); `num_shards` is
  /// clamped to [1, capacity] so every shard can hold at least one entry.
  explicit ShardedLruCache(size_t capacity, int num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value (promoting it to most-recently-used) or
  /// nullptr on miss. `count_miss=false` suppresses the miss counter for
  /// speculative probes (e.g. the serving layer's admission-time peek,
  /// which is always followed by an authoritative worker-side Get) so a
  /// computed request never counts two misses.
  Value Get(const CacheKey& key, bool count_miss = true);

  /// Inserts or overwrites `key`, evicting the shard's least-recently-used
  /// entry when the shard is full.
  void Put(const CacheKey& key, Value value);

  /// Drops every entry (counters are preserved).
  void Clear();

  /// Current number of resident entries (sums shard sizes; approximate
  /// under concurrent mutation).
  size_t size() const;

  /// Total configured capacity.
  size_t capacity() const { return capacity_; }

  /// Number of shards actually in use.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The shard a key maps to (exposed for tests).
  int ShardIndex(const CacheKey& key) const;

  /// Counter snapshot.
  Counters counters() const;

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used. The map points into the list.
    std::list<std::pair<CacheKey, Value>> lru;
    std::unordered_map<CacheKey,
                       std::list<std::pair<CacheKey, Value>>::iterator,
                       CacheKeyHash>
        index;
    size_t capacity = 0;
  };

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_LRU_CACHE_H_
