// Serving workload generation and replay files.
//
// A workload is an ordered stream of QueryRequests (core/request.h).
// Generated workloads
// draw their query nodes from a uniform or zipfian source distribution
// (zipfian models the heavy skew of real query traffic, where a small set
// of hot entities receives most requests — the regime the serving cache
// is built for; DESIGN.md section 6.5). Generation is fully deterministic
// in the spec: same spec, same node count, same requests.
//
// The on-disk format is line-oriented text, one request per line (verbs
// match QueryKindToString):
//
//   # comment / blank lines ignored
//   pair <i> <j>
//   topk <source> <k>
//   source <q>
//   ppr <source> <k>
//   n2v <source> <k>

#ifndef CLOUDWALKER_SERVE_WORKLOAD_H_
#define CLOUDWALKER_SERVE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/request.h"

namespace cloudwalker {

/// Source-node skew of a generated workload.
enum class WorkloadSkew {
  kUniform = 0,  // every node equally likely
  kZipf = 1,     // node r with probability proportional to 1 / (r+1)^theta
};

/// Parameters of GenerateWorkload. Defaults model a read-heavy top-k
/// service with zipfian skew.
struct WorkloadSpec {
  /// Total number of requests.
  uint64_t num_requests = 1000;
  /// Fraction of requests that are single-pair.
  double pair_fraction = 0.2;
  /// Fraction of requests that are full single-source vectors.
  double source_fraction = 0.0;
  /// Fraction of requests that are personalized-PageRank top-k.
  double ppr_fraction = 0.0;
  /// Fraction of requests that are node2vec top-k (the remainder after all
  /// four fractions are SimRank top-k).
  double n2v_fraction = 0.0;
  /// k of every top-k request (SimRank, ppr and n2v alike).
  uint32_t topk = 10;
  /// Source-node skew.
  WorkloadSkew skew = WorkloadSkew::kZipf;
  /// Zipf exponent theta (> 0); ~0.99 matches classic web/YCSB traffic.
  double zipf_theta = 0.99;
  /// Master seed for the request stream.
  uint64_t seed = 42;

  /// InvalidArgument unless num_requests >= 1, every fraction is in
  /// [0, 1], the fractions sum to at most 1, and zipf_theta > 0.
  Status Validate() const;
};

/// Draws node ids with Zipf(theta) probabilities over [0, num_nodes) by
/// inverting a precomputed CDF (O(n) setup, O(log n) per sample). Rank r
/// maps to node id r, so low ids are the hot set.
class ZipfSampler {
 public:
  ZipfSampler(NodeId num_nodes, double theta);

  /// One sample from the configured distribution.
  NodeId Sample(Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1
};

/// Generates `spec.num_requests` requests over node ids [0, num_nodes).
/// Pair endpoints and source nodes follow the configured skew; the
/// request-kind interleaving is an independent deterministic stream.
StatusOr<std::vector<QueryRequest>> GenerateWorkload(
    NodeId num_nodes, const WorkloadSpec& spec);

/// Writes the workload in the text format above.
Status SaveWorkloadText(const std::vector<QueryRequest>& requests,
                        const std::string& path);

/// Reads a workload written by SaveWorkloadText (or by hand).
StatusOr<std::vector<QueryRequest>> LoadWorkloadText(const std::string& path);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_WORKLOAD_H_
