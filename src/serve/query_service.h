// QueryService — the concurrent query-serving layer (DESIGN.md section 6).
//
// A QueryService serves unified typed QueryRequests (core/request.h) on a
// ThreadPool through an asynchronous, future-based core, over *versioned,
// hot-swappable* engine snapshots (DESIGN.md section 9):
//
//   auto cw = CloudWalker::Open("web.cwk");  // or Build(std::move(graph))
//   ThreadPool pool;
//   QueryService service(*cw, ServeOptions{}, &pool);
//   QueryFuture f = service.Submit(          // async: admit + enqueue
//       QueryRequest::SourceTopK(42, 10).WithTimeout(0.050));
//   QueryResponse r = f.Wait();              // block for this answer
//   auto batch = service.ExecuteBatch(requests);   // many, parallel
//   ServeStats s = service.Stats();                // p50/p95/p99, QPS
//   ...
//   auto v2 = CloudWalker::Open("web-v2.cwk");
//   service.Publish(*v2);      // atomic swap; zero dropped requests
//
// Hot swap: every request *pins* the current snapshot entry at admission
// (one shared_ptr copy — RCU by refcount). A Publish() mid-stream routes
// new admissions to the new version while in-flight walks finish on the
// version they pinned; the last pin out the door releases the old engine
// (and unmaps its snapshot). The result cache and in-flight dedup are
// keyed by the pinned entry's *epoch*, so a swap can never serve one
// version's scores for another and two versions never dedup together.
//
// Submit() performs *admission*: the request's effective options are
// validated once (ValidateQueryOptions — same function, same messages as
// the facade and the CLI), its deadline is armed on the future's
// CancelToken, and the bounded in-flight queue is charged. A full queue
// rejects immediately with kResourceExhausted instead of buffering
// without bound; an armed deadline is checked at admission, when a worker
// picks the request up, and cooperatively between walk blocks inside the
// kernel, so an abandoned request stops consuming CPU. QueryFuture::
// Cancel() requests the same cooperative stop explicitly. Stopped
// requests complete with kDeadlineExceeded / kCancelled and never poison
// the cache (only OK answers are inserted).
//
// Three mechanisms make it serve-fast without touching the kernels:
//   1. a sharded LRU cache over per-source top-k answers (kSourceTopK,
//      kPersonalizedPageRank, kNode2Vec — every kind whose answer is a
//      (source, k) top-k list), keyed by (snapshot epoch, kind, interned
//      options id, source, k) so neither per-request option overrides nor
//      engine versions nor query kinds can ever share an entry,
//   2. in-flight deduplication: concurrent identical top-k requests are
//      computed once and fanned out to every waiter,
//   3. wait-free latency/throughput accounting (ServeStats); latencies
//      are measured from admission for every requester, dedup waiters
//      included.
// Kernel runs themselves go through the wrapped CloudWalker's prebuilt
// WalkContext, i.e. the batched alias-arena walk engine (DESIGN.md
// section 8) — cache misses pay the fast kernel, not the scalar one.
//
// Determinism contract: a request's answer depends only on (effective
// options, request fields), both folded into the cache key — so every
// response is bit-identical to the equivalent direct CloudWalker call,
// regardless of thread count, cache state, or request interleaving.
//
// Legacy blocking API: Execute / Pair / SourceTopK / ExecuteBatch are
// thin shims over Submit(...).Wait() (with backpressure instead of
// rejection, so a replayed batch always completes), preserved for callers
// that predate the async core.

#ifndef CLOUDWALKER_SERVE_QUERY_SERVICE_H_
#define CLOUDWALKER_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/cloudwalker.h"
#include "core/request.h"
#include "serve/lru_cache.h"
#include "serve/snapshot_registry.h"
#include "serve/stats.h"

namespace cloudwalker {

/// Waitable handle to one submitted request, backed by shared completion
/// state. Copyable (copies share the same underlying request); a
/// default-constructed future is invalid. The future stays usable after
/// the service that issued it is destroyed (the service drains first).
class QueryFuture {
 public:
  QueryFuture() = default;

  /// False only for default-constructed futures.
  bool valid() const { return state_ != nullptr; }

  /// True once the response has been published.
  bool done() const;

  /// Blocks until the response is published, then returns it (repeatable;
  /// every call returns the same answer).
  QueryResponse Wait() const;

  /// Waits up to `seconds`; true when the response became available.
  bool WaitFor(double seconds) const;

  /// Requests cooperative cancellation: a queued request completes with
  /// kCancelled without running a kernel, a running one stops at its next
  /// checkpoint. A request that already completed is unaffected.
  void Cancel() const;

 private:
  friend class QueryService;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    QueryResponse response;
    CancelToken cancel;  // armed with the deadline at admission
    WallTimer admitted;  // latency is measured from admission for everyone
  };

  explicit QueryFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Waits for every future and returns the responses aligned by index.
/// Invalid futures yield a default response with an Internal status.
std::vector<QueryResponse> WhenAll(const std::vector<QueryFuture>& futures);

/// Serving-layer configuration. `query` holds the default QueryOptions;
/// requests may override them per call — the override is folded into the
/// result-cache key, so heterogeneous options keep the one-answer-per-key
/// contract (by design: one (key) = one reproducible answer).
struct ServeOptions {
  /// Max resident entries in the top-k result cache; 0 disables caching.
  size_t cache_capacity = 1 << 14;
  /// Lock shards in the cache (clamped to [1, cache_capacity]).
  int cache_shards = 8;
  /// Compute concurrent identical top-k requests once, fanning the
  /// answer out to every waiter.
  bool dedup_in_flight = true;
  /// Admission control: max requests admitted but not yet completed.
  /// Submit() rejects with kResourceExhausted beyond this; the blocking
  /// shims apply backpressure instead. 0 = unbounded.
  size_t max_queue_depth = 4096;
  /// Walk-phase threads per query (engine/parallel_walk.h, DESIGN.md
  /// section 12): > 1 re-backs every published engine that has no walk
  /// backend of its own with a CloudWalker::Parallelize wrapper of that
  /// many threads — bit-identical answers, so cache keys and dedup are
  /// unaffected. 0 or 1 serves walks single-threaded; engines already
  /// carrying a backend (e.g. sharded ones) pass through untouched.
  int walk_threads = 0;
  /// Out-of-core budget in MiB for the snapshot (re)opens the serving
  /// front end performs (the CLI serve command and its SIGHUP reload
  /// path): > 0 opens snapshots with CloudWalker::OutOfCore under this
  /// block-cache budget instead of the mmap-resident Open(), so a server
  /// can host an artifact larger than RAM (DESIGN.md section 14). The
  /// service itself serves whichever engine is published; the knob lives
  /// here so reloads reproduce the startup engine shape. Exclusive with
  /// walk_threads (an out-of-core engine carries its own backend).
  uint64_t ooc_budget_mb = 0;
  /// Default query options; per-request overrides take precedence.
  QueryOptions query;
};

/// Thread-safe serving facade over versioned immutable CloudWalker
/// snapshots. All methods may be called from any thread.
class QueryService {
 public:
  /// Serves `cloudwalker` as version 1 of the internal registry. `pool`
  /// (borrowed, may be null for synchronous execution) runs submitted
  /// requests; with a null pool, Submit() executes inline before
  /// returning an already-completed future.
  QueryService(std::shared_ptr<const CloudWalker> cloudwalker,
               const ServeOptions& options = {}, ThreadPool* pool = nullptr);

  /// Legacy borrowing constructor: `cloudwalker` must outlive the service
  /// (and stays version 1 unless a successor is published).
  QueryService(const CloudWalker* cloudwalker,
               const ServeOptions& options = {}, ThreadPool* pool = nullptr);

  /// Atomically publishes `walker` as the new current version (label =
  /// previous max + 1) and returns its epoch. In-flight requests finish on
  /// the version they pinned at admission; every request admitted after
  /// this returns executes — and caches — under the new version. The old
  /// version stays resident in the registry (for Retire() or rollback
  /// re-publication) but receives no new traffic.
  StatusOr<uint64_t> Publish(std::shared_ptr<const CloudWalker> walker);

  /// The engine versions behind this service: Publish(version, ...) /
  /// Retire(version) here for explicit version management.
  SnapshotRegistry& registry() { return registry_; }

  /// The entry new admissions are currently routed to (never null).
  std::shared_ptr<const SnapshotRegistry::Entry> CurrentSnapshot() const {
    return registry_.Current();
  }

  /// Blocks until every admitted request has completed.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` and returns its future. Admission validates the
  /// effective options, arms the deadline, and charges the bounded
  /// queue; a rejected or invalid request returns an already-completed
  /// future carrying the error. A top-k request whose answer is already
  /// resident is served inline on the calling thread — a cache hit needs
  /// no queue slot and no worker, so warm traffic never touches the
  /// admission lock.
  QueryFuture Submit(const QueryRequest& request);

  /// Blocking shim: Submit + Wait, with backpressure (waits for queue
  /// space instead of rejecting).
  QueryResponse Execute(const QueryRequest& request);

  /// Legacy blocking shims over Execute().
  QueryResponse Pair(NodeId i, NodeId j);
  QueryResponse SourceTopK(NodeId source, uint32_t k);

  /// Executes a mixed batch on the pool (one request per work unit, so
  /// identical concurrent sources can dedup); responses align with
  /// `requests` by index. Applies backpressure, never rejects. Serial
  /// when the pool is null.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  /// Aggregate metrics since construction / the last ResetStats().
  ServeStats Stats() const;

  /// Zeroes counters, the latency histogram, and the QPS window (cached
  /// results stay resident).
  void ResetStats();

  /// The effective serving configuration.
  const ServeOptions& options() const { return options_; }

 private:
  using State = QueryFuture::State;
  using Snapshot = SnapshotRegistry::Entry;
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  // Shared completion state for one in-flight top-k computation.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    TopKPtr result;
  };

  // InternOptions returns this once kMaxInternedOptions distinct option
  // sets exist; such requests still answer correctly, just uncached and
  // undeduped (no id means no exact key).
  static constexpr uint32_t kUncachedOptionsId = 0xffffffffu;
  // Bound on distinct interned option sets (memory and scan cap; real
  // traffic uses a handful).
  static constexpr size_t kMaxInternedOptions = 4096;

  // Admission: pin the current snapshot, validate, arm deadline, serve
  // resident cache hits inline, charge the queue, dispatch.
  QueryFuture SubmitInternal(const QueryRequest& request, bool block_on_full);

  // Executes one admitted request on the current thread, against the
  // snapshot it pinned at admission.
  void RunTask(const std::shared_ptr<State>& state,
               const QueryRequest& request, const SnapshotPtr& snapshot);

  // Computes (or joins) a top-k answer via cache + dedup, keyed under the
  // pinned snapshot's epoch.
  void AnswerTopK(const QueryRequest& request, const SnapshotPtr& snapshot,
                  const CancelToken* cancel, QueryResponse* response);

  // Stamps admission-based latency, bumps counters, publishes the
  // response, and wakes waiters.
  void Publish(const std::shared_ptr<State>& state, QueryResponse response);

  // Maps an options set to its stable small id, packed into cache/dedup
  // keys. Lock-free for the service defaults (id 0); overrides take
  // intern_mu_ and an O(1) hash lookup. Returns kUncachedOptionsId once
  // the table is full.
  uint32_t InternOptions(const QueryOptions& options);

  // Versioned engines; admissions pin registry_.Current() by shared_ptr.
  SnapshotRegistry registry_;
  ServeOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ShardedLruCache> cache_;  // null when caching is off

  // Admission bookkeeping: requests admitted but not yet published.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  size_t in_flight_ = 0;

  // Interned per-request option overrides: one entry per distinct option
  // set ever submitted (capped at kMaxInternedOptions), plus a hash
  // index so lookups stay O(1) as the table grows.
  mutable std::mutex intern_mu_;
  std::vector<QueryOptions> interned_options_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> intern_index_;

  std::mutex inflight_mu_;
  std::unordered_map<CacheKey, std::shared_ptr<InFlight>, CacheKeyHash>
      inflight_;

  LatencyHistogram latencies_;
  mutable std::mutex stats_mu_;  // guards window_ and cache_baseline_
  WallTimer window_;             // QPS window start
  std::atomic<uint64_t> pair_queries_{0};
  std::atomic<uint64_t> source_queries_{0};
  std::atomic<uint64_t> topk_queries_{0};
  std::atomic<uint64_t> all_pairs_queries_{0};
  std::atomic<uint64_t> ppr_queries_{0};
  std::atomic<uint64_t> n2v_queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> computed_{0};
  std::atomic<uint64_t> dedup_shared_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  ShardedLruCache::Counters cache_baseline_;  // counters at last ResetStats
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_QUERY_SERVICE_H_
