// QueryService — the concurrent query-serving layer (DESIGN.md section 6).
//
// A QueryService wraps a shared immutable CloudWalker (graph + diagonal
// index) and executes streams of typed requests on a ThreadPool:
//
//   CloudWalker cw = ...;            // indexed, immutable
//   ThreadPool pool;
//   QueryService service(&cw, ServeOptions{}, &pool);
//   ServeResponse r = service.SourceTopK(42, 10);        // one request
//   auto batch = service.ExecuteBatch(requests);         // many, parallel
//   ServeStats s = service.Stats();                      // p50/p95/p99, QPS
//
// Three mechanisms make it serve-fast without touching the kernels:
//   1. a sharded LRU cache over single-source top-k answers,
//   2. in-flight deduplication: concurrent identical (source, k) requests
//      are computed once and fanned out to every waiter,
//   3. wait-free latency/throughput accounting (ServeStats).
// Kernel runs themselves go through the wrapped CloudWalker's prebuilt
// WalkContext, i.e. the batched alias-arena walk engine (DESIGN.md
// section 8) — cache misses pay the fast kernel, not the scalar one.
//
// Determinism contract: query options are fixed per service, every cache
// entry is keyed by (source, k), and the kernels derive their randomness
// from (options.seed, source) — so every response is bit-identical to the
// equivalent direct CloudWalker::SinglePair / SingleSourceTopK call,
// regardless of thread count, cache state, or request interleaving.

#ifndef CLOUDWALKER_SERVE_QUERY_SERVICE_H_
#define CLOUDWALKER_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/cloudwalker.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"

namespace cloudwalker {

/// The two online request types the service answers.
enum class ServeRequestType : uint8_t {
  kPair = 0,        // MCSP: s(a, b)
  kSourceTopK = 1,  // MCSS + top-k: the k nodes most similar to a
};

/// One typed request. Use the factory helpers; `b`/`k` are only meaningful
/// for the matching type.
struct ServeRequest {
  ServeRequestType type = ServeRequestType::kPair;
  NodeId a = 0;    // pair: i; top-k: the source node
  NodeId b = 0;    // pair: j
  uint32_t k = 0;  // top-k: result size

  static ServeRequest Pair(NodeId i, NodeId j) {
    return ServeRequest{ServeRequestType::kPair, i, j, 0};
  }
  static ServeRequest TopK(NodeId source, uint32_t k) {
    return ServeRequest{ServeRequestType::kSourceTopK, source, 0, k};
  }

  bool operator==(const ServeRequest&) const = default;
};

/// One answered request. Exactly one of `score` / `topk` is meaningful,
/// per the request type; both are unset when `status` is not OK.
struct ServeResponse {
  Status status;
  double score = 0.0;                                   // kPair
  std::shared_ptr<const std::vector<ScoredNode>> topk;  // kSourceTopK
  bool cache_hit = false;  // answered straight from the result cache
  bool deduped = false;    // joined a concurrent identical computation
  double latency_seconds = 0.0;  // wall time inside the service
};

/// Serving-layer configuration. `query` is fixed for the lifetime of the
/// service — it implicitly keys the result cache, so changing options
/// requires a new QueryService (by design: one service = one reproducible
/// answer per (source, k)).
struct ServeOptions {
  /// Max resident entries in the top-k result cache; 0 disables caching.
  size_t cache_capacity = 1 << 14;
  /// Lock shards in the cache (clamped to [1, cache_capacity]).
  int cache_shards = 8;
  /// Compute concurrent identical (source, k) requests once, fanning the
  /// answer out to every waiter.
  bool dedup_in_flight = true;
  /// Query options applied to every request.
  QueryOptions query;
};

/// Thread-safe facade serving MCSP / MCSS-top-k requests over a shared
/// immutable CloudWalker. All methods may be called from any thread.
class QueryService {
 public:
  /// `cloudwalker` is borrowed and must outlive the service. `pool` (also
  /// borrowed, may be null for serial batches) runs ExecuteBatch requests.
  QueryService(const CloudWalker* cloudwalker,
               const ServeOptions& options = {}, ThreadPool* pool = nullptr);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// MCSP s(i, j) on the calling thread (never cached — pair answers are
  /// cheap relative to their key-space size).
  ServeResponse Pair(NodeId i, NodeId j);

  /// Top-k most similar to `source`, on the calling thread, via cache and
  /// in-flight dedup.
  ServeResponse SourceTopK(NodeId source, uint32_t k);

  /// Dispatches one typed request on the calling thread.
  ServeResponse Execute(const ServeRequest& request);

  /// Executes a mixed batch on the pool (one request per chunk, so
  /// identical concurrent sources can dedup); responses align with
  /// `requests` by index. Serial when the pool is null.
  std::vector<ServeResponse> ExecuteBatch(
      const std::vector<ServeRequest>& requests);

  /// Aggregate metrics since construction / the last ResetStats().
  ServeStats Stats() const;

  /// Zeroes counters, the latency histogram, and the QPS window (cached
  /// results stay resident).
  void ResetStats();

  /// The effective serving configuration.
  const ServeOptions& options() const { return options_; }

 private:
  // Shared completion state for one in-flight top-k computation.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::shared_ptr<const std::vector<ScoredNode>> result;
  };

  // Computes (or joins) the top-k answer; fills everything but latency.
  void AnswerTopK(NodeId source, uint32_t k, ServeResponse* response);

  const CloudWalker* cloudwalker_;
  ServeOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ShardedLruCache> cache_;  // null when caching is off

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_;

  LatencyHistogram latencies_;
  mutable std::mutex stats_mu_;  // guards window_ and cache_baseline_
  WallTimer window_;             // QPS window start
  std::atomic<uint64_t> pair_queries_{0};
  std::atomic<uint64_t> topk_queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> computed_{0};
  std::atomic<uint64_t> dedup_shared_{0};
  ShardedLruCache::Counters cache_baseline_;  // counters at last ResetStats
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SERVE_QUERY_SERVICE_H_
