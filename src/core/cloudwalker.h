// CloudWalker facade — the library's primary public API.
//
// Quickstart:
//
//   Graph graph = GenerateRmat(10'000, 150'000, /*seed=*/7);
//   ThreadPool pool;
//   auto cw = CloudWalker::Build(&graph, IndexingOptions{}, &pool);
//   CW_CHECK_OK(cw.status());
//   // Unified entry point: one typed request, one typed response.
//   QueryResponse r = cw->Execute(QueryRequest::Pair(12, 34));
//   double s = r.score();
//   auto similar =
//       cw->Execute(QueryRequest::SourceTopK(12, 10)).topk();
//   // Legacy blocking methods remain and answer bit-identically:
//   double s2 = cw->SinglePair(12, 34).value();  // == s
//
// Execute() covers every query kind (DESIGN.md section 6.1) — the four
// SimRank shapes plus the walk-program kinds kPersonalizedPageRank and
// kNode2Vec (DESIGN.md section 10) — honors
// per-request QueryOptions overrides and deadlines, and fills execution
// metadata (QueryStats, latency). The per-kind methods and Execute()
// funnel into the same internal helpers, so their answers are
// bit-identical by construction.
//
// The facade owns the DiagonalIndex but only observes the graph; the graph
// must outlive the CloudWalker instance.

#ifndef CLOUDWALKER_CORE_CLOUDWALKER_H_
#define CLOUDWALKER_CORE_CLOUDWALKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/threading.h"
#include "core/diagonal.h"
#include "core/indexer.h"
#include "core/options.h"
#include "core/queries.h"
#include "core/request.h"
#include "graph/graph.h"

namespace cloudwalker {

class SnapshotView;
class WalkBackend;
class PagedSnapshot;
class OutOfCoreWalkBackend;
struct ShardingOptions;
struct ParallelWalkOptions;
struct RemoteBackendOptions;
struct OutOfCoreOptions;
struct SnapshotMetadata;
enum class ReorderKind : uint32_t;

/// An indexed graph ready to answer SimRank queries. Query methods are
/// const and thread-safe (independent RNG streams per call).
///
/// Lifecycle (DESIGN.md section 9): the expensive offline work — index
/// estimation and arena build — happens once, in Build(); the result can
/// be persisted with WriteSnapshot() and reopened near-instantly with
/// Open(), which mmaps the artifact and serves every flat array zero-copy.
/// The shared_ptr-returning factories own everything they need (graph,
/// index, arena, backing mmap), which is what lets the serving layer
/// hot-swap whole engine versions by swapping one pointer.
class CloudWalker {
 public:
  /// Runs offline indexing on `graph` (threaded via `pool`, serial when
  /// null) and returns a query-ready instance. `graph` is borrowed.
  static StatusOr<CloudWalker> Build(const Graph* graph,
                                     const IndexingOptions& options = {},
                                     ThreadPool* pool = nullptr);

  /// Owning build: takes the graph by value (move it in) and returns a
  /// self-contained engine — the instance keeps the graph alive, so it can
  /// be published to a registry or handed across threads freely.
  static StatusOr<std::shared_ptr<const CloudWalker>> Build(
      Graph&& graph, const IndexingOptions& options = {},
      ThreadPool* pool = nullptr);

  /// Opens a cloudwalker-snap-v1 artifact written by WriteSnapshot().
  /// The CSR arrays, alias arena, and D-vector are consumed zero-copy out
  /// of the mapping (the returned instance pins it), so opening costs one
  /// integrity pass instead of an index rebuild — and answers are
  /// bit-identical to the instance that wrote the snapshot.
  static StatusOr<std::shared_ptr<const CloudWalker>> Open(
      const std::string& path);

  /// Out-of-core open (DESIGN.md section 14): like Open(), but only the
  /// per-node arrays become resident — the per-edge walk arrays stay on
  /// disk and page in through a block cache capped at
  /// options.budget_bytes, so an artifact larger than RAM still serves
  /// every query kind. Answers are bit-identical to Open() of the same
  /// file. Restrictions: such an instance cannot WriteSnapshot() (it
  /// cannot read back every edge at once by design) and cannot be
  /// re-backed by Shard() / Parallelize() / Distribute().
  static StatusOr<std::shared_ptr<const CloudWalker>> OutOfCore(
      const std::string& path);

  /// As above with explicit knobs.
  static StatusOr<std::shared_ptr<const CloudWalker>> OutOfCore(
      const std::string& path, const OutOfCoreOptions& options);

  /// Persists this instance as one self-contained snapshot artifact
  /// (graph + arena + index + build metadata); reopen with Open().
  /// Snapshot-backed instances mirror their source's format extensions
  /// (block index, target block bytes, permutation), so open-then-rewrite
  /// is byte-stable across old and new formats alike.
  Status WriteSnapshot(const std::string& path) const;

  /// Renumbers the graph for walk locality (ooc/reorder.h) and persists
  /// the reordered artifact with its permutation section; Open() and
  /// OutOfCore() translate external ids at the API boundary, so callers
  /// of the reopened snapshot see the original id space. kNone writes an
  /// ordinary snapshot. Fails on an out-of-core or already-reordered
  /// instance.
  Status WriteReorderedSnapshot(const std::string& path,
                                ReorderKind kind) const;

  /// Wraps a previously built (e.g. loaded) index for `graph`. Fails when
  /// the index and graph disagree on the node count.
  static StatusOr<CloudWalker> FromIndex(const Graph* graph,
                                         DiagonalIndex index);

  /// Owning FromIndex: the returned instance keeps `graph` alive. The
  /// incremental-maintenance path uses this to wrap a refreshed
  /// (graph, index) pair for publication without re-estimating rows.
  static StatusOr<std::shared_ptr<const CloudWalker>> FromIndex(
      Graph&& graph, DiagonalIndex index);

  /// Re-backs `base` with the in-process sharded BSP walk engine
  /// (shard/sharded_engine.h, DESIGN.md section 11): every walk phase of
  /// every query kind fans out across options.num_shards shard workers and
  /// merges at the level barriers. Results are bit-identical to `base` at
  /// every shard count, so a sharded instance can transparently replace
  /// the single-node one anywhere — including behind QueryService, which
  /// preserves cache keys, dedup, deadlines, and cancellation unchanged.
  /// The returned instance shares base's graph / index / arena / snapshot
  /// (base itself may be released).
  static StatusOr<std::shared_ptr<const CloudWalker>> Shard(
      const std::shared_ptr<const CloudWalker>& base,
      const ShardingOptions& options);

  /// Re-backs `base` with the multi-threaded walk executor
  /// (engine/parallel_walk.h, DESIGN.md section 12): every walk phase
  /// partitions its walker batch across options.num_threads workers and
  /// merges raw endpoints before the single aggregation pass. Results are
  /// bit-identical to `base` at every thread count (the counter RNG keys
  /// on global walker ids, never threads), so a parallel instance can
  /// transparently replace the single-threaded one anywhere — including
  /// behind QueryService (ServeOptions::walk_threads wires this up). The
  /// returned instance shares base's graph / index / arena / snapshot.
  static StatusOr<std::shared_ptr<const CloudWalker>> Parallelize(
      const std::shared_ptr<const CloudWalker>& base,
      const ParallelWalkOptions& options);

  /// Re-backs `base` with the socket-connected distributed walk backend
  /// (net/remote_backend.h, DESIGN.md section 13): every walk phase runs
  /// as BSP supersteps across the options.workers shard-worker processes,
  /// which must serve the *same snapshot artifact* — the handshake pins
  /// the snapshot fingerprint, so `base` must be snapshot-backed (Open());
  /// an in-memory build fails with kFailedPrecondition. Results are
  /// bit-identical to `base` at every worker count; a worker death
  /// mid-query is recovered by deterministic superstep replay, and a
  /// worker lost past the retry budget surfaces as kUnavailable (never a
  /// partial answer, never cached). The returned instance shares base's
  /// graph / index / arena / snapshot.
  static StatusOr<std::shared_ptr<const CloudWalker>> Distribute(
      const std::shared_ptr<const CloudWalker>& base,
      const RemoteBackendOptions& options);

  /// The unified entry point: dispatches any QueryRequest kind, applying
  /// the request's per-request options (default QueryOptions{} otherwise)
  /// and arming its deadline on an internal CancelToken. `pool`
  /// parallelizes kAllPairsTopK only. `cancel` (borrowed, optional) takes
  /// precedence over the request's own deadline — the serving layer
  /// passes its admission-armed token here. A stopped request reports
  /// kDeadlineExceeded / kCancelled with an empty payload.
  QueryResponse Execute(const QueryRequest& request,
                        ThreadPool* pool = nullptr,
                        const CancelToken* cancel = nullptr) const;

  /// MCSP: SimRank estimate for (i, j), clamped to [0, 1]; exact 1 for
  /// i == j. Fails on out-of-range nodes or invalid options.
  StatusOr<double> SinglePair(NodeId i, NodeId j,
                              const QueryOptions& options = {}) const;

  /// MCSS: estimates s(q, v) for every v, returned sparse and clamped to
  /// [0, 1] with the self-similarity entry pinned to exactly 1.
  StatusOr<SparseVector> SingleSource(NodeId q,
                                      const QueryOptions& options = {}) const;

  /// The k nodes most similar to q (self excluded), by MCSS.
  StatusOr<std::vector<ScoredNode>> SingleSourceTopK(
      NodeId q, size_t k, const QueryOptions& options = {}) const;

  /// MCAP: per-source top-k over all sources (parallel via `pool`).
  StatusOr<std::vector<std::vector<ScoredNode>>> AllPairs(
      size_t k, const QueryOptions& options = {},
      ThreadPool* pool = nullptr) const;

  /// Personalized PageRank: the k nodes with the highest teleport-walk
  /// endpoint frequency around q (self excluded); options.ppr_alpha is the
  /// continuation probability. Walk-program kind — scores are frequencies,
  /// not SimRank values.
  StatusOr<std::vector<ScoredNode>> PersonalizedPageRankTopK(
      NodeId q, size_t k, const QueryOptions& options = {}) const;

  /// node2vec: the k nodes with the highest average visit frequency over
  /// second-order biased walks from q (self excluded);
  /// options.n2v_return_p / options.n2v_in_out_q are the p / q biases.
  StatusOr<std::vector<ScoredNode>> Node2VecTopK(
      NodeId q, size_t k, const QueryOptions& options = {}) const;

  /// The offline index.
  const DiagonalIndex& index() const { return index_; }

  /// Counters from the Build() indexing run (zeros for FromIndex; restored
  /// from the build metadata for Open()).
  const IndexingStats& indexing_stats() const { return stats_; }

  /// The options the index was built under (reconstructed from metadata
  /// for Open(); params only for FromIndex).
  const IndexingOptions& indexing_options() const {
    return indexing_options_;
  }

  /// The snapshot backing this instance, or null for in-memory builds
  /// (and for out-of-core opens, which expose paged_snapshot() instead).
  const std::shared_ptr<const SnapshotView>& snapshot() const {
    return snapshot_;
  }

  /// The out-of-core backend, or null unless this instance came from
  /// OutOfCore(). Exposes the paged snapshot and the cache counters.
  const std::shared_ptr<const OutOfCoreWalkBackend>& ooc_backend() const {
    return ooc_backend_;
  }

  /// The locality permutation (internal id -> external id) when this
  /// instance serves a reordered snapshot; empty otherwise. All public
  /// APIs speak external ids — this is observability only.
  std::span<const NodeId> permutation() const { return int_to_ext_; }

  /// The graph being queried.
  const Graph& graph() const { return *graph_; }

  /// The prebuilt batched-walk context (alias arena; DESIGN.md section 8)
  /// every query of this instance runs through.
  const WalkContext& walk_context() const { return *walk_context_; }

  /// The walk backend override installed by Shard(), or null when queries
  /// run the single-node batched kernel.
  const WalkBackend* walk_backend() const { return walk_backend_.get(); }

  /// Persists the index; reload with DiagonalIndex::Load + FromIndex.
  Status SaveIndex(const std::string& path) const { return index_.Save(path); }

 private:
  CloudWalker(const Graph* graph, DiagonalIndex index, IndexingStats stats,
              IndexingOptions options)
      : CloudWalker(graph, std::move(index), stats, options,
                    std::make_shared<const WalkContext>(*graph)) {}

  // Snapshot path: the context wraps a prebuilt (possibly view-backed)
  // arena instead of rebuilding one.
  CloudWalker(const Graph* graph, DiagonalIndex index, IndexingStats stats,
              IndexingOptions options,
              std::shared_ptr<const WalkContext> context)
      : graph_(graph),
        index_(std::move(index)),
        stats_(std::move(stats)),
        indexing_options_(options),
        walk_context_(std::move(context)) {}

  Status ValidateQuery(NodeId node, const QueryOptions& options) const;

  // Drains the walk backend's first job-fatal error (remote backends can
  // fail mid-job; see WalkBackend::TakeError). Ok for local backends.
  Status TakeBackendError() const;

  // The build-metadata block WriteSnapshot stamps (shared with
  // WriteReorderedSnapshot).
  SnapshotMetadata BuildSnapshotMetadata() const;

  // External/internal id translation of a reordered snapshot; both are
  // the identity when int_to_ext_ is empty. Every public API takes and
  // returns external ids; the kernels below run on internal ids.
  NodeId ToInternal(NodeId external) const {
    return ext_to_int_.empty() ? external : ext_to_int_[external];
  }
  NodeId ToExternal(NodeId internal) const {
    return int_to_ext_.empty() ? internal : int_to_ext_[internal];
  }
  // Re-indexes a kernel-produced sparse vector into external id space
  // (sorted; pass-through when not reordered). Helpers translate *before*
  // top-k extraction so score ties break on external ids.
  SparseVector TranslateSparse(SparseVector raw) const;

  // Installs the id-translation state for a reordered snapshot: borrows
  // `perm` (internal -> external; the instance must pin its owner),
  // builds the inverse, and re-keys every walk on external source ids by
  // wrapping `inner` in an ExternalKeyWalkBackend.
  void InstallPermutation(std::span<const NodeId> perm,
                          std::shared_ptr<const WalkBackend> inner);

  // The shared kernels behind both the per-kind methods and Execute().
  // All assume validated inputs; `stats` / `cancel` may be null. A stopped
  // run returns the token's error status instead of a value.
  StatusOr<double> PairScore(NodeId i, NodeId j, const QueryOptions& options,
                             QueryStats* stats,
                             const CancelToken* cancel) const;
  StatusOr<SparseVector> SourceVector(NodeId q, const QueryOptions& options,
                                      QueryStats* stats,
                                      const CancelToken* cancel) const;
  StatusOr<std::vector<ScoredNode>> SourceTopK(
      NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
      const CancelToken* cancel) const;
  StatusOr<std::vector<std::vector<ScoredNode>>> AllPairsInternal(
      size_t k, const QueryOptions& options, ThreadPool* pool,
      QueryStats* stats, const CancelToken* cancel) const;
  StatusOr<std::vector<ScoredNode>> PprTopK(NodeId q, size_t k,
                                            const QueryOptions& options,
                                            QueryStats* stats,
                                            const CancelToken* cancel) const;
  StatusOr<std::vector<ScoredNode>> N2vTopK(NodeId q, size_t k,
                                            const QueryOptions& options,
                                            QueryStats* stats,
                                            const CancelToken* cancel) const;

  const Graph* graph_;
  DiagonalIndex index_;
  IndexingStats stats_;
  IndexingOptions indexing_options_;
  // Shared so copies of the facade reuse one arena (immutable after build).
  std::shared_ptr<const WalkContext> walk_context_;
  // Walk backend override (Shard()); null runs the single-node kernel. The
  // backend borrows graph_ / walk_context_, which this instance pins.
  std::shared_ptr<const WalkBackend> walk_backend_;
  // Ownership plumbing of the shared_ptr factories: the heap graph (owning
  // Build / FromIndex / Open) and the backing mapping (Open). Null when
  // the graph is merely borrowed. graph_ aliases owned_graph_ when set.
  std::shared_ptr<const Graph> owned_graph_;
  std::shared_ptr<const SnapshotView> snapshot_;
  // OutOfCore(): the demand-paged backend (also aliased — possibly through
  // an ExternalKeyWalkBackend wrapper — by walk_backend_). Pins the
  // PagedSnapshot the facade's graph / index spans alias.
  std::shared_ptr<const OutOfCoreWalkBackend> ooc_backend_;
  // Locality-reorder translation (empty unless the backing snapshot
  // carries a permutation). int_to_ext_ borrows the snapshot's
  // kPermutation span; ext_to_int_ is its materialized inverse.
  std::span<const NodeId> int_to_ext_;
  std::vector<NodeId> ext_to_int_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_CLOUDWALKER_H_
