// CloudWalker facade — the library's primary public API.
//
// Quickstart:
//
//   Graph graph = GenerateRmat(10'000, 150'000, /*seed=*/7);
//   ThreadPool pool;
//   auto cw = CloudWalker::Build(&graph, IndexingOptions{}, &pool);
//   CW_CHECK_OK(cw.status());
//   double s = cw->SinglePair(12, 34).value();
//   auto similar = cw->SingleSourceTopK(12, /*k=*/10).value();
//
// The facade owns the DiagonalIndex but only observes the graph; the graph
// must outlive the CloudWalker instance.

#ifndef CLOUDWALKER_CORE_CLOUDWALKER_H_
#define CLOUDWALKER_CORE_CLOUDWALKER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/threading.h"
#include "core/diagonal.h"
#include "core/indexer.h"
#include "core/options.h"
#include "core/queries.h"
#include "graph/graph.h"

namespace cloudwalker {

/// An indexed graph ready to answer SimRank queries. Query methods are
/// const and thread-safe (independent RNG streams per call).
class CloudWalker {
 public:
  /// Runs offline indexing on `graph` (threaded via `pool`, serial when
  /// null) and returns a query-ready instance. `graph` is borrowed.
  static StatusOr<CloudWalker> Build(const Graph* graph,
                                     const IndexingOptions& options = {},
                                     ThreadPool* pool = nullptr);

  /// Wraps a previously built (e.g. loaded) index for `graph`. Fails when
  /// the index and graph disagree on the node count.
  static StatusOr<CloudWalker> FromIndex(const Graph* graph,
                                         DiagonalIndex index);

  /// MCSP: SimRank estimate for (i, j), clamped to [0, 1]; exact 1 for
  /// i == j. Fails on out-of-range nodes or invalid options.
  StatusOr<double> SinglePair(NodeId i, NodeId j,
                              const QueryOptions& options = {}) const;

  /// MCSS: estimates s(q, v) for every v, returned sparse and clamped to
  /// [0, 1] with the self-similarity entry pinned to exactly 1.
  StatusOr<SparseVector> SingleSource(NodeId q,
                                      const QueryOptions& options = {}) const;

  /// The k nodes most similar to q (self excluded), by MCSS.
  StatusOr<std::vector<ScoredNode>> SingleSourceTopK(
      NodeId q, size_t k, const QueryOptions& options = {}) const;

  /// MCAP: per-source top-k over all sources (parallel via `pool`).
  StatusOr<std::vector<std::vector<ScoredNode>>> AllPairs(
      size_t k, const QueryOptions& options = {},
      ThreadPool* pool = nullptr) const;

  /// The offline index.
  const DiagonalIndex& index() const { return index_; }

  /// Counters from the Build() indexing run (zeros for FromIndex).
  const IndexingStats& indexing_stats() const { return stats_; }

  /// The graph being queried.
  const Graph& graph() const { return *graph_; }

  /// The prebuilt batched-walk context (alias arena; DESIGN.md section 8)
  /// every query of this instance runs through.
  const WalkContext& walk_context() const { return *walk_context_; }

  /// Persists the index; reload with DiagonalIndex::Load + FromIndex.
  Status SaveIndex(const std::string& path) const { return index_.Save(path); }

 private:
  CloudWalker(const Graph* graph, DiagonalIndex index, IndexingStats stats)
      : graph_(graph),
        index_(std::move(index)),
        stats_(stats),
        walk_context_(std::make_shared<const WalkContext>(*graph)) {}

  Status ValidateQuery(NodeId node, const QueryOptions& options) const;

  const Graph* graph_;
  DiagonalIndex index_;
  IndexingStats stats_;
  // Shared so copies of the facade reuse one arena (immutable after build).
  std::shared_ptr<const WalkContext> walk_context_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_CLOUDWALKER_H_
