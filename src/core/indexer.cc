#include "core/indexer.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/walk.h"

namespace cloudwalker {
namespace {

WalkConfig WalkConfigFromIndexing(const IndexingOptions& options) {
  WalkConfig cfg;
  cfg.num_steps = options.params.num_steps;
  cfg.num_walkers = options.num_walkers;
  cfg.dangling = options.dangling;
  cfg.seed = options.seed;
  return cfg;
}

}  // namespace

SparseVector RowFromWalkDistributions(const WalkDistributions& dists,
                                      double decay,
                                      SparseAccumulator* scratch_row) {
  SparseAccumulator local(64);
  SparseAccumulator& acc = scratch_row != nullptr ? *scratch_row : local;
  acc.Clear();
  double ct = 1.0;
  for (const SparseVector& level : dists.levels) {
    for (const SparseEntry& e : level) {
      acc.Add(e.index, ct * e.value * e.value);
    }
    ct *= decay;
  }
  return acc.ToSortedVector();
}

SparseVector BuildIndexRow(const Graph& graph, NodeId k,
                           const IndexingOptions& options,
                           WalkScratch* scratch_walk,
                           SparseAccumulator* scratch_row, uint64_t* steps,
                           const WalkContext* context) {
  WalkStats walk_stats;
  const WalkDistributions dists = SimulateWalkDistributions(
      graph, context, k, WalkConfigFromIndexing(options), scratch_walk,
      /*owner=*/nullptr, &walk_stats);
  if (steps != nullptr) *steps += walk_stats.steps;
  return RowFromWalkDistributions(dists, options.params.decay, scratch_row);
}

namespace {

/// Per-chunk indexing state: padded walk scratch plus the row accumulator,
/// grouped so parallel row builders share no cache lines.
struct alignas(kCacheLineBytes) IndexWorkerState {
  explicit IndexWorkerState(const IndexingOptions& options)
      : walk(options.num_walkers),
        row(options.num_walkers * (options.params.num_steps + 1)) {}
  WalkScratch walk;  // alignas(kCacheLineBytes) itself
  SparseAccumulator row;
};

}  // namespace

IndexRows BuildIndexRows(const Graph& graph, const IndexingOptions& options,
                         ThreadPool* pool) {
  IndexRows out;
  out.rows.resize(graph.num_nodes());
  const WalkContext context(graph);  // amortized over all rows
  std::atomic<uint64_t> total_steps{0};
  ParallelFor(pool, 0, graph.num_nodes(), /*grain=*/0,
              [&](uint64_t begin, uint64_t end) {
                IndexWorkerState state(options);
                uint64_t steps = 0;
                for (uint64_t v = begin; v < end; ++v) {
                  out.rows[v] =
                      BuildIndexRow(graph, static_cast<NodeId>(v), options,
                                    &state.walk, &state.row, &steps,
                                    &context);
                }
                total_steps.fetch_add(steps, std::memory_order_relaxed);
              });
  out.total_walk_steps = total_steps.load(std::memory_order_relaxed);
  return out;
}

std::vector<double> JacobiSweep(const std::vector<SparseVector>& rows,
                                const std::vector<double>& x,
                                ThreadPool* pool) {
  CW_CHECK_EQ(rows.size(), x.size());
  std::vector<double> next(x.size());
  ParallelFor(pool, 0, rows.size(), /*grain=*/0,
              [&rows, &x, &next](uint64_t begin, uint64_t end) {
                for (uint64_t k = begin; k < end; ++k) {
                  double off = 0.0;
                  double diag = 0.0;
                  for (const SparseEntry& e : rows[k]) {
                    if (e.index == k) {
                      diag = e.value;
                    } else {
                      off += e.value * x[e.index];
                    }
                  }
                  next[k] = diag != 0.0 ? (1.0 - off) / diag : x[k];
                }
              });
  return next;
}

double JacobiResidual(const std::vector<SparseVector>& rows,
                      const std::vector<double>& x, ThreadPool* pool) {
  CW_CHECK_EQ(rows.size(), x.size());
  std::atomic<uint64_t> max_bits{0};
  ParallelFor(pool, 0, rows.size(), /*grain=*/0,
              [&rows, &x, &max_bits](uint64_t begin, uint64_t end) {
                double local = 0.0;
                for (uint64_t k = begin; k < end; ++k) {
                  double ax = 0.0;
                  for (const SparseEntry& e : rows[k]) {
                    ax += e.value * x[e.index];
                  }
                  local = std::max(local, std::fabs(ax - 1.0));
                }
                // Lock-free max via the monotone bit pattern of
                // non-negative doubles.
                uint64_t bits;
                static_assert(sizeof(bits) == sizeof(local));
                std::memcpy(&bits, &local, sizeof(bits));
                uint64_t seen = max_bits.load(std::memory_order_relaxed);
                while (bits > seen && !max_bits.compare_exchange_weak(
                                          seen, bits,
                                          std::memory_order_relaxed)) {
                }
              });
  double out;
  const uint64_t bits = max_bits.load(std::memory_order_relaxed);
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

StatusOr<DiagonalIndex> BuildDiagonalIndex(const Graph& graph,
                                           const IndexingOptions& options,
                                           ThreadPool* pool,
                                           IndexingStats* stats) {
  CW_RETURN_IF_ERROR(options.Validate());
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot index an empty graph");
  }
  if (options.row_mode == RowMode::kRegenerate && options.track_residuals) {
    return Status::InvalidArgument(
        "track_residuals requires RowMode::kStoreRows (regenerate mode "
        "would double the walk work per iteration)");
  }

  IndexingStats local_stats;
  IndexingStats& st = stats != nullptr ? *stats : local_stats;
  st = IndexingStats{};

  const double x0 = options.initial_diagonal >= 0.0
                        ? options.initial_diagonal
                        : 1.0 - options.params.decay;
  std::vector<double> x(graph.num_nodes(), x0);

  if (options.row_mode == RowMode::kStoreRows) {
    WallTimer walk_timer;
    const IndexRows rows = BuildIndexRows(graph, options, pool);
    st.walk_steps = rows.total_walk_steps;
    for (const SparseVector& r : rows.rows) st.row_nonzeros += r.size();
    st.walk_seconds = walk_timer.Seconds();

    WallTimer solve_timer;
    for (uint32_t it = 0; it < options.jacobi_iterations; ++it) {
      x = JacobiSweep(rows.rows, x, pool);
      if (options.track_residuals) {
        st.residuals.push_back(JacobiResidual(rows.rows, x, pool));
      }
    }
    st.solve_seconds = solve_timer.Seconds();
  } else {
    // kRegenerate: each sweep re-derives every row from its per-node seed,
    // so all sweeps see the same matrix A without storing it.
    WallTimer solve_timer;
    const WalkContext context(graph);  // shared by all sweeps
    std::atomic<uint64_t> total_steps{0};
    std::atomic<uint64_t> total_nnz{0};
    for (uint32_t it = 0; it < options.jacobi_iterations; ++it) {
      std::vector<double> next(x.size());
      const bool count_this_pass = it == 0;
      ParallelFor(
          pool, 0, graph.num_nodes(), /*grain=*/0,
          [&](uint64_t begin, uint64_t end) {
            IndexWorkerState state(options);
            uint64_t steps = 0, nnz = 0;
            for (uint64_t k = begin; k < end; ++k) {
              const SparseVector row =
                  BuildIndexRow(graph, static_cast<NodeId>(k), options,
                                &state.walk, &state.row, &steps,
                                &context);
              nnz += row.size();
              double off = 0.0, diag = 0.0;
              for (const SparseEntry& e : row) {
                if (e.index == k) {
                  diag = e.value;
                } else {
                  off += e.value * x[e.index];
                }
              }
              next[k] = diag != 0.0 ? (1.0 - off) / diag : x[k];
            }
            if (count_this_pass) {
              total_steps.fetch_add(steps, std::memory_order_relaxed);
              total_nnz.fetch_add(nnz, std::memory_order_relaxed);
            }
          });
      x = std::move(next);
      // Residual tracking in regenerate mode would double the walk work per
      // iteration; not supported (use kStoreRows for convergence studies).
    }
    st.walk_steps = total_steps.load(std::memory_order_relaxed) *
                    options.jacobi_iterations;
    st.row_nonzeros = total_nnz.load(std::memory_order_relaxed);
    st.solve_seconds = solve_timer.Seconds();
  }

  return DiagonalIndex(options.params, std::move(x));
}

}  // namespace cloudwalker
