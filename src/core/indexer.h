// Offline indexing: Monte-Carlo estimation of the rows of
//   A[k][j] = sum_{t=0..T} c^t (P^t e_k)[j]^2
// followed by a parallel Jacobi solve of A x = 1 for x = diag(D).

#ifndef CLOUDWALKER_CORE_INDEXER_H_
#define CLOUDWALKER_CORE_INDEXER_H_

#include <cstdint>
#include <vector>

#include "common/sparse.h"
#include "common/threading.h"
#include "core/diagonal.h"
#include "core/options.h"
#include "engine/walk.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Execution counters of one indexing run.
struct IndexingStats {
  uint64_t walk_steps = 0;        // Monte-Carlo steps taken
  uint64_t row_nonzeros = 0;      // total nnz across estimated rows
  double walk_seconds = 0.0;      // wall time of the walk/row phase
  double solve_seconds = 0.0;     // wall time of the Jacobi phase
  /// max_k |(A x)_k - 1| after each iteration
  /// (filled only when options.track_residuals).
  std::vector<double> residuals;
};

/// Folds walk distributions into the sparse row
/// a_k[j] = sum_t c^t û_{k,t}[j]^2. Exposed for the distributed engines,
/// which need custom walk accounting.
SparseVector RowFromWalkDistributions(const WalkDistributions& dists,
                                      double decay,
                                      SparseAccumulator* scratch_row =
                                          nullptr);

/// Estimates the sparse row a_k for one node with R walkers. Row entries:
/// a_k[j] = sum_t c^t û_{k,t}[j]^2, at most R(T+1)+1 non-zeros.
/// `scratch_*` (optional) avoid per-call allocation; `steps` (optional)
/// accumulates the number of walk steps taken. `context` (optional) routes
/// the walks through the batched arena kernel — results are bit-identical
/// with or without it (DESIGN.md section 8); pass one whenever several rows
/// are built against the same graph.
SparseVector BuildIndexRow(const Graph& graph, NodeId k,
                           const IndexingOptions& options,
                           WalkScratch* scratch_walk = nullptr,
                           SparseAccumulator* scratch_row = nullptr,
                           uint64_t* steps = nullptr,
                           const WalkContext* context = nullptr);

/// All rows of A, estimated in parallel. rows[k] is BuildIndexRow(k).
struct IndexRows {
  std::vector<SparseVector> rows;
  uint64_t total_walk_steps = 0;
};
IndexRows BuildIndexRows(const Graph& graph, const IndexingOptions& options,
                         ThreadPool* pool);

/// One Jacobi sweep x_new[k] = (1 - sum_{j != k} a_kj x[j]) / a_kk over
/// materialized rows, parallel over rows. Rows with a_kk == 0 (impossible
/// for well-formed rows, which always contain the t=0 self term) keep their
/// previous value.
std::vector<double> JacobiSweep(const std::vector<SparseVector>& rows,
                                const std::vector<double>& x,
                                ThreadPool* pool);

/// Residual max_k |(A x)_k - 1| over materialized rows.
double JacobiResidual(const std::vector<SparseVector>& rows,
                      const std::vector<double>& x, ThreadPool* pool);

/// Full offline indexing pipeline: walks -> rows -> L Jacobi iterations.
/// Honors options.row_mode (materialize vs regenerate-with-same-seed).
/// `stats` (optional) receives execution counters.
StatusOr<DiagonalIndex> BuildDiagonalIndex(const Graph& graph,
                                           const IndexingOptions& options,
                                           ThreadPool* pool,
                                           IndexingStats* stats = nullptr);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_INDEXER_H_
