// Incremental maintenance of a DiagonalIndex under graph updates — the
// natural extension of CloudWalker's per-node decomposition (and a staple
// follow-up to the paper): when edges change, only nodes whose walk
// distributions can have changed need their rows re-estimated, after which
// a few Jacobi sweeps restore the solve.
//
// A node k's row a_k depends on the T-step reverse-walk neighborhood of k,
// so an edge (u -> v) insertion/removal invalidates exactly the nodes that
// can reach v within T forward... more precisely: u joins/leaves In(v), so
// every node whose reverse walks can visit v within T - 1 steps — the
// nodes reachable from v via OUT-edges within T - 1 hops, plus v itself —
// may sample differently. We recompute rows for that dirty set and re-run
// the Jacobi iterations globally (cheap relative to the walks).

#ifndef CLOUDWALKER_CORE_INCREMENTAL_H_
#define CLOUDWALKER_CORE_INCREMENTAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/threading.h"
#include "core/diagonal.h"
#include "core/indexer.h"
#include "core/options.h"
#include "graph/graph.h"

namespace cloudwalker {

/// One edge insertion or removal.
struct EdgeUpdate {
  NodeId from = 0;
  NodeId to = 0;
  bool insert = true;  // false = removal
};

/// Maintains a CloudWalker index across batches of edge updates.
/// Usage:
///   IncrementalIndexer inc(options);
///   CW_ASSIGN_OR_RETURN(auto state, inc.Initialize(graph, pool));
///   ... graph' = graph with updates applied (rebuilt by the caller) ...
///   CW_ASSIGN_OR_RETURN(state, inc.ApplyUpdates(graph_prime, updates,
///                                               std::move(state), pool));
///   state.index  // refreshed diag(D)
///
/// The indexer owns no graph; callers pass the *post-update* graph along
/// with the update batch. Rows are kept materialized between batches
/// (RowMode::kStoreRows semantics).
class IncrementalIndexer {
 public:
  /// State carried between update batches.
  struct State {
    DiagonalIndex index;
    std::vector<SparseVector> rows;  // one per node, current graph
    /// Nodes re-estimated by the last ApplyUpdates call (telemetry).
    uint64_t last_dirty_count = 0;
  };

  explicit IncrementalIndexer(const IndexingOptions& options)
      : options_(options) {}

  /// Full build: rows + solve, returning reusable state.
  StatusOr<State> Initialize(const Graph& graph, ThreadPool* pool) const;

  /// Applies a batch of updates: computes the dirty set (nodes within
  /// T-1 forward hops of any touched endpoint), re-estimates exactly those
  /// rows against `updated_graph`, and re-solves. Node counts must match
  /// the previous state. Fails on out-of-range endpoints.
  StatusOr<State> ApplyUpdates(const Graph& updated_graph,
                               const std::vector<EdgeUpdate>& updates,
                               State state, ThreadPool* pool) const;

  /// The dirty set of `updates` on `graph`: every node whose index row can
  /// change. Exposed for testing and cost analysis.
  std::vector<NodeId> DirtyNodes(const Graph& graph,
                                 const std::vector<EdgeUpdate>& updates) const;

 private:
  IndexingOptions options_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_INCREMENTAL_H_
