#include "core/distributed.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "cluster/partitioner.h"
#include "common/logging.h"
#include "core/indexer.h"
#include "core/queries.h"
#include "engine/walk.h"

namespace cloudwalker {
namespace {

/// Serialized size of one walker exchange record: (source, position, rng
/// cursor) — what the RDD model ships between partitions each superstep.
constexpr uint64_t kWalkerRecordBytes = 12;

/// Serialized size of one (node, double) pair in shuffles.
constexpr uint64_t kEntryRecordBytes = 12;

/// Bytes each worker needs beyond the graph during indexing: the diag(D)
/// iterate plus the right-hand side.
uint64_t IterateBytes(const Graph& graph) {
  return static_cast<uint64_t>(graph.num_nodes()) * 2 * sizeof(double);
}

WalkConfig WalkConfigFromIndexing(const IndexingOptions& options) {
  WalkConfig cfg;
  cfg.num_steps = options.params.num_steps;
  cfg.num_walkers = options.num_walkers;
  cfg.dangling = options.dangling;
  cfg.seed = options.seed;
  return cfg;
}

/// Fraction of uniformly-placed records that land on a remote partition.
double RemoteFraction(int num_workers) {
  return num_workers <= 1
             ? 0.0
             : static_cast<double>(num_workers - 1) / num_workers;
}

}  // namespace

const char* ExecutionModelName(ExecutionModel model) {
  return model == ExecutionModel::kBroadcasting ? "Broadcasting" : "RDD";
}

StatusOr<DistributedIndexResult> DistributedBuildIndex(
    const Graph& graph, const IndexingOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool) {
  CW_RETURN_IF_ERROR(options.Validate());
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot index an empty graph");
  }

  SimCluster cluster(cluster_config, cost_model, pool);
  const int w = cluster.num_workers();
  const NodeId n = graph.num_nodes();
  const uint32_t t_steps = options.params.num_steps;

  DistributedIndexResult result;

  if (model == ExecutionModel::kBroadcasting) {
    // Every worker holds a full graph replica.
    if (!cluster.CheckWorkerMemory(graph.MemoryBytes() + IterateBytes(graph),
                                   "graph replica")) {
      result.cost = cluster.report();
      return result;
    }
    const Partitioner part(PartitionStrategy::kRange, n, w);

    // Stage 1: per-node walks + row estimation over range partitions.
    std::vector<SparseVector> rows(n);
    std::atomic<uint64_t> max_row_bytes{0};
    cluster.RunStage(
        "index-walks",
        [&](int worker, WorkMeter& meter) {
          NodeId begin = 0, end = 0;
          part.OwnedRange(worker, &begin, &end);
          WalkScratch scratch_walk(options.num_walkers);
          SparseAccumulator scratch_row(options.num_walkers * (t_steps + 1));
          uint64_t steps = 0, nnz = 0;
          for (NodeId k = begin; k < end; ++k) {
            rows[k] = BuildIndexRow(graph, k, options, &scratch_walk,
                                    &scratch_row, &steps);
            nnz += rows[k].size();
          }
          meter.AddWalkSteps(steps);
          meter.AddFlops(nnz * 3);  // square, scale, accumulate
          const uint64_t bytes = nnz * (sizeof(SparseEntry));
          uint64_t seen = max_row_bytes.load(std::memory_order_relaxed);
          while (bytes > seen && !max_row_bytes.compare_exchange_weak(
                                     seen, bytes, std::memory_order_relaxed)) {
          }
        },
        /*tasks_per_worker=*/cluster_config.cores_per_worker);

    if (options.row_mode == RowMode::kStoreRows) {
      // Materialized rows are spillable (a Spark executor would spill them
      // or fall back to RowMode::kRegenerate), so they contribute to peak
      // memory without gating feasibility — only the graph replica does.
      cluster.RecordWorkerMemory(
          graph.MemoryBytes() + IterateBytes(graph) +
          max_row_bytes.load(std::memory_order_relaxed));
    }

    // Jacobi: broadcast x, sweep owned rows, gather updates.
    const double x0 = options.initial_diagonal >= 0.0
                          ? options.initial_diagonal
                          : 1.0 - options.params.decay;
    std::vector<double> x(n, x0);
    for (uint32_t it = 0; it < options.jacobi_iterations; ++it) {
      cluster.Broadcast(static_cast<uint64_t>(n) * sizeof(double));
      std::vector<double> next(n);
      cluster.RunStage(
          "jacobi-sweep",
          [&](int worker, WorkMeter& meter) {
            NodeId begin = 0, end = 0;
            part.OwnedRange(worker, &begin, &end);
            uint64_t nnz = 0;
            for (NodeId k = begin; k < end; ++k) {
              double off = 0.0, diag = 0.0;
              for (const SparseEntry& e : rows[k]) {
                if (e.index == k) {
                  diag = e.value;
                } else {
                  off += e.value * x[e.index];
                }
              }
              next[k] = diag != 0.0 ? (1.0 - off) / diag : x[k];
              nnz += rows[k].size();
            }
            meter.AddFlops(nnz * 2);
          },
          /*tasks_per_worker=*/cluster_config.cores_per_worker);
      cluster.Shuffle(static_cast<uint64_t>(n) * sizeof(double));
      x = std::move(next);
    }
    result.index = DiagonalIndex(options.params, std::move(x));
    result.cost = cluster.report();
    return result;
  }

  // --- RDD model ---
  // Per-worker state: one hash partition of the graph, the in-flight walker
  // RDD, and this partition's row fragments.
  const Partitioner part(PartitionStrategy::kHash, n, w);
  const uint64_t walker_state_bytes = static_cast<uint64_t>(n) *
                                      options.num_walkers * kWalkerRecordBytes /
                                      std::max(1, w);
  // Hash partitions are balanced to within a few percent; 1.1 covers skew.
  const uint64_t partition_bytes =
      static_cast<uint64_t>(1.1 * graph.MemoryBytes() / std::max(1, w));
  if (!cluster.CheckWorkerMemory(
          partition_bytes + walker_state_bytes + IterateBytes(graph) / w,
          "graph partition + walker state")) {
    result.cost = cluster.report();
    return result;
  }

  const NodeOwnerFn owner = [&part](NodeId v) { return part.Owner(v); };

  // Superstep 1 carries the real computation (results are identical to the
  // Broadcasting model: same per-source seeds); supersteps 2..T are
  // accounted afterwards so the stage/shuffle structure matches a BSP
  // walker exchange.
  std::vector<SparseVector> rows(n);
  std::atomic<uint64_t> total_steps{0}, total_crossings{0}, total_nnz{0};
  cluster.RunStage(
      "walk-superstep",
      [&](int worker, WorkMeter& meter) {
        WalkScratch scratch_walk(options.num_walkers);
        SparseAccumulator scratch_row(options.num_walkers * (t_steps + 1));
        const WalkConfig cfg = WalkConfigFromIndexing(options);
        uint64_t steps = 0, crossings = 0, nnz = 0;
        for (NodeId k = 0; k < n; ++k) {
          if (part.Owner(k) != worker) continue;
          WalkStats ws;
          const WalkDistributions dists = SimulateWalkDistributions(
              graph, k, cfg, &scratch_walk, &owner, &ws);
          rows[k] = RowFromWalkDistributions(dists, options.params.decay,
                                             &scratch_row);
          steps += ws.steps;
          crossings += ws.partition_crossings;
          nnz += rows[k].size();
        }
        meter.AddWalkSteps(steps);
        meter.AddFlops(nnz * 3);
        total_steps.fetch_add(steps, std::memory_order_relaxed);
        total_crossings.fetch_add(crossings, std::memory_order_relaxed);
        total_nnz.fetch_add(nnz, std::memory_order_relaxed);
      },
      /*tasks_per_worker=*/cluster_config.cores_per_worker);

  const uint64_t crossings = total_crossings.load(std::memory_order_relaxed);
  const uint64_t nnz = total_nnz.load(std::memory_order_relaxed);
  for (uint32_t t = 1; t <= t_steps; ++t) {
    // Walker exchange of this superstep (volume spread evenly over steps).
    cluster.Shuffle(crossings * kWalkerRecordBytes / std::max(1u, t_steps));
    if (t > 1) {
      // Remaining supersteps: compute already accounted in superstep 1's
      // meter; pay the per-stage scheduling cost.
      cluster.RunStage("walk-superstep", [](int, WorkMeter&) {},
                       cluster_config.cores_per_worker);
    }
  }
  // Row fragments are grouped by source's home partition.
  cluster.RunStage("assemble-rows", [](int, WorkMeter&) {},
                   cluster_config.cores_per_worker);
  cluster.Shuffle(static_cast<uint64_t>(
      static_cast<double>(nnz) * kEntryRecordBytes * RemoteFraction(w)));

  // Jacobi over the partitioned rows: each iteration joins the x RDD
  // against row references (shuffle) and sweeps locally.
  const double x0 = options.initial_diagonal >= 0.0
                        ? options.initial_diagonal
                        : 1.0 - options.params.decay;
  std::vector<double> x(n, x0);
  for (uint32_t it = 0; it < options.jacobi_iterations; ++it) {
    cluster.Shuffle(static_cast<uint64_t>(static_cast<double>(n) *
                                          sizeof(double) * RemoteFraction(w)));
    std::vector<double> next(n);
    cluster.RunStage(
        "jacobi-sweep",
        [&](int worker, WorkMeter& meter) {
          uint64_t flops = 0;
          for (NodeId k = 0; k < n; ++k) {
            if (part.Owner(k) != worker) continue;
            double off = 0.0, diag = 0.0;
            for (const SparseEntry& e : rows[k]) {
              if (e.index == k) {
                diag = e.value;
              } else {
                off += e.value * x[e.index];
              }
            }
            next[k] = diag != 0.0 ? (1.0 - off) / diag : x[k];
            flops += rows[k].size() * 2;
          }
          meter.AddFlops(flops);
        },
        /*tasks_per_worker=*/cluster_config.cores_per_worker);
    x = std::move(next);
  }
  result.index = DiagonalIndex(options.params, std::move(x));
  result.cost = cluster.report();
  return result;
}

StatusOr<DistributedPairResult> DistributedSinglePair(
    const Graph& graph, const DiagonalIndex& index, NodeId i, NodeId j,
    const QueryOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool) {
  CW_RETURN_IF_ERROR(options.Validate());
  if (i >= graph.num_nodes() || j >= graph.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (index.num_nodes() != graph.num_nodes()) {
    return Status::FailedPrecondition("index/graph node count mismatch");
  }

  SimCluster cluster(cluster_config, cost_model, pool);
  DistributedPairResult result;

  if (model == ExecutionModel::kBroadcasting) {
    // Driver-local: the driver holds the graph and diag(D).
    if (!cluster.CheckWorkerMemory(graph.MemoryBytes() + IterateBytes(graph),
                                   "graph replica on driver")) {
      result.cost = cluster.report();
      return result;
    }
    cluster.RunDriver([&](WorkMeter& meter) {
      QueryStats qs;
      result.value = SinglePairQuery(graph, index, i, j, options, &qs);
      meter.AddWalkSteps(qs.walk_steps);
      meter.AddFlops(qs.walk_steps);  // dot-product accumulation
    });
    result.cost = cluster.report();
    return result;
  }

  // RDD: T walk supersteps for the two walker clouds + one aggregation
  // stage joining against the partitioned diag(D).
  const Partitioner part(PartitionStrategy::kHash, graph.num_nodes(),
                         cluster.num_workers());
  const NodeOwnerFn owner = [&part](NodeId v) { return part.Owner(v); };
  QueryStats qs;
  cluster.RunStage(
      "pair-walk-superstep",
      [&](int worker, WorkMeter& meter) {
        if (worker != part.Owner(i)) return;  // walks start at i's and j's
        QueryStats local;                     // home; model as one task
        result.value =
            SinglePairQuery(graph, index, i, j, options, &local, &owner);
        meter.AddWalkSteps(local.walk_steps);
        meter.AddFlops(local.walk_steps);
        qs = local;
      },
      /*tasks_per_worker=*/1);
  const uint32_t t_steps = index.params().num_steps;
  for (uint32_t t = 2; t <= t_steps; ++t) {
    cluster.RunStage("pair-walk-superstep", [](int, WorkMeter&) {}, 1);
  }
  cluster.Shuffle(qs.walk_crossings * kWalkerRecordBytes);
  // Aggregation: empirical distributions joined with D by node key.
  cluster.RunStage("pair-aggregate", [](int, WorkMeter&) {}, 1);
  cluster.Shuffle(static_cast<uint64_t>(
      static_cast<double>(2ull * options.num_walkers * t_steps) *
      kEntryRecordBytes * RemoteFraction(cluster.num_workers())));
  result.cost = cluster.report();
  return result;
}

StatusOr<DistributedSourceResult> DistributedSingleSource(
    const Graph& graph, const DiagonalIndex& index, NodeId q,
    const QueryOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool) {
  CW_RETURN_IF_ERROR(options.Validate());
  if (q >= graph.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (index.num_nodes() != graph.num_nodes()) {
    return Status::FailedPrecondition("index/graph node count mismatch");
  }

  SimCluster cluster(cluster_config, cost_model, pool);
  DistributedSourceResult result;

  if (model == ExecutionModel::kBroadcasting) {
    if (!cluster.CheckWorkerMemory(graph.MemoryBytes() + IterateBytes(graph),
                                   "graph replica on driver")) {
      result.cost = cluster.report();
      return result;
    }
    cluster.RunDriver([&](WorkMeter& meter) {
      QueryStats qs;
      result.scores = SingleSourceQuery(graph, index, q, options, &qs);
      meter.AddWalkSteps(qs.walk_steps);
      meter.AddEdgeOps(qs.push_ops);
      meter.AddFlops(qs.walk_steps + qs.push_ops);
    });
    result.cost = cluster.report();
    return result;
  }

  // RDD: T walk supersteps + T push supersteps + aggregation.
  const Partitioner part(PartitionStrategy::kHash, graph.num_nodes(),
                         cluster.num_workers());
  const NodeOwnerFn owner = [&part](NodeId v) { return part.Owner(v); };
  QueryStats qs;
  cluster.RunStage(
      "source-walk-superstep",
      [&](int worker, WorkMeter& meter) {
        if (worker != part.Owner(q)) return;
        QueryStats local;
        result.scores =
            SingleSourceQuery(graph, index, q, options, &local, &owner);
        meter.AddWalkSteps(local.walk_steps);
        meter.AddEdgeOps(local.push_ops);
        meter.AddFlops(local.walk_steps + local.push_ops);
        qs = local;
      },
      /*tasks_per_worker=*/1);
  const uint32_t t_steps = index.params().num_steps;
  for (uint32_t t = 2; t <= t_steps; ++t) {
    cluster.RunStage("source-walk-superstep", [](int, WorkMeter&) {}, 1);
  }
  cluster.Shuffle(qs.walk_crossings * kWalkerRecordBytes);
  for (uint32_t t = 1; t <= t_steps; ++t) {
    cluster.RunStage("source-push-superstep", [](int, WorkMeter&) {}, 1);
  }
  cluster.Shuffle(qs.push_crossings * kEntryRecordBytes);
  cluster.RunStage("source-aggregate", [](int, WorkMeter&) {}, 1);
  cluster.Shuffle(static_cast<uint64_t>(
      static_cast<double>(result.scores.size()) * kEntryRecordBytes *
      RemoteFraction(cluster.num_workers())));
  result.cost = cluster.report();
  return result;
}

}  // namespace cloudwalker
