#include "core/queries.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>

#include "common/logging.h"
#include "common/random.h"
#include "engine/walk.h"
#include "engine/walk_backend.h"
#include "engine/walk_program.h"

namespace cloudwalker {
namespace {

WalkConfig WalkConfigFromQuery(const DiagonalIndex& index,
                               const QueryOptions& options,
                               const CancelToken* cancel) {
  WalkConfig cfg;
  cfg.num_steps = index.params().num_steps;
  cfg.num_walkers = options.num_walkers;
  cfg.dangling = options.dangling;
  cfg.seed = options.seed;
  cfg.cancel = cancel;
  return cfg;
}

bool Stopped(const CancelToken* cancel) {
  return cancel != nullptr && cancel->ShouldStop();
}

/// One sampled forward-push step: an unbiased one-sample estimate of
/// z' = P^T z. Mass at node k moves to `fanout` sampled out-neighbors v,
/// reweighted by |Out(k)| / (fanout * |In(v)|).
void SampledPushStep(const Graph& graph, const SparseVector& z,
                     uint32_t fanout, Xoshiro256& rng, SparseAccumulator& out,
                     QueryStats* stats, const NodeOwnerFn* owner) {
  out.Clear();
  for (const SparseEntry& e : z) {
    const NodeId k = e.index;
    const uint32_t out_deg = graph.OutDegree(k);
    if (out_deg == 0) continue;  // k is in nobody's in-neighborhood
    const double scale =
        e.value * static_cast<double>(out_deg) / static_cast<double>(fanout);
    for (uint32_t f = 0; f < fanout; ++f) {
      const NodeId v = graph.OutNeighbor(k, rng.UniformInt32(out_deg));
      const uint32_t in_deg = graph.InDegree(v);
      CW_DCHECK(in_deg > 0);  // v has at least the edge k -> v
      out.Add(v, scale / static_cast<double>(in_deg));
      if (stats != nullptr) {
        ++stats->push_ops;
        if (owner != nullptr && (*owner)(k) != (*owner)(v)) {
          ++stats->push_crossings;
        }
      }
    }
  }
}

/// Exact forward-push step z' = P^T z with optional epsilon pruning.
void ExactPushStep(const Graph& graph, const SparseVector& z,
                   double prune_threshold, SparseAccumulator& out,
                   QueryStats* stats, const NodeOwnerFn* owner) {
  out.Clear();
  for (const SparseEntry& e : z) {
    if (prune_threshold > 0.0 && std::abs(e.value) < prune_threshold) {
      continue;
    }
    for (const NodeId v : graph.OutNeighbors(e.index)) {
      out.Add(v, e.value / static_cast<double>(graph.InDegree(v)));
      if (stats != nullptr) {
        ++stats->push_ops;
        if (owner != nullptr && (*owner)(e.index) != (*owner)(v)) {
          ++stats->push_crossings;
        }
      }
    }
  }
}

}  // namespace

double SinglePairQuery(const Graph& graph, const DiagonalIndex& index,
                       NodeId i, NodeId j, const QueryOptions& options,
                       QueryStats* stats, const NodeOwnerFn* owner,
                       const WalkContext* context, const CancelToken* cancel,
                       const WalkBackend* backend) {
  CW_CHECK_LT(i, graph.num_nodes());
  CW_CHECK_LT(j, graph.num_nodes());
  CW_CHECK_EQ(index.num_nodes(), graph.num_nodes());
  if (i == j) return 1.0;

  const LocalWalkBackend local(graph, context, owner);
  if (backend == nullptr) backend = &local;
  const WalkConfig cfg = WalkConfigFromQuery(index, options, cancel);
  WalkStats wi, wj;
  const WalkDistributions di = backend->SimRankLevels(i, cfg, &wi);
  if (Stopped(cancel)) return 0.0;  // caller discards (request.h contract)
  const WalkDistributions dj = backend->SimRankLevels(j, cfg, &wj);
  if (stats != nullptr) {
    stats->walk_steps += wi.steps + wj.steps;
    stats->walk_crossings += wi.partition_crossings + wj.partition_crossings;
  }

  // t = 0 contributes nothing for i != j (e_i and e_j are disjoint).
  double estimate = 0.0;
  double ct = 1.0;
  const std::span<const double> diag = index.diagonal();
  for (size_t t = 0; t < di.levels.size(); ++t) {
    if (t > 0) {
      estimate +=
          ct * SparseVector::DotWeighted(di.levels[t], dj.levels[t], diag);
    }
    ct *= index.params().decay;
  }
  return estimate;
}

double SinglePairQueryPaired(const Graph& graph, const DiagonalIndex& index,
                             NodeId i, NodeId j, const QueryOptions& options,
                             QueryStats* stats) {
  CW_CHECK_LT(i, graph.num_nodes());
  CW_CHECK_LT(j, graph.num_nodes());
  CW_CHECK_EQ(index.num_nodes(), graph.num_nodes());
  if (i == j) return 1.0;

  // Streams are keyed by the unordered pair so that swapping (i, j) swaps
  // the walker roles but reproduces the same trajectories.
  const NodeId lo = std::min(i, j), hi = std::max(i, j);
  const uint64_t pair_key =
      DeriveSeed(options.seed, (static_cast<uint64_t>(lo) << 32) | hi);
  const std::span<const double> diag = index.diagonal();
  const double c = index.params().decay;
  const uint32_t t_steps = index.params().num_steps;

  double sum = 0.0;
  uint64_t steps = 0;
  for (uint32_t r = 0; r < options.num_walkers; ++r) {
    Xoshiro256 rng_lo = Xoshiro256::Derive(pair_key, 2ull * r);
    Xoshiro256 rng_hi = Xoshiro256::Derive(pair_key, 2ull * r + 1);
    NodeId a = lo, b = hi;
    double ct = 1.0;
    for (uint32_t t = 1; t <= t_steps; ++t) {
      a = StepReverse(graph, a, rng_lo, options.dangling);
      b = StepReverse(graph, b, rng_hi, options.dangling);
      steps += 2;
      if (a == kInvalidNode || b == kInvalidNode) break;
      ct *= c;
      if (a == b) sum += ct * diag[a];
    }
  }
  if (stats != nullptr) stats->walk_steps += steps;
  return sum / static_cast<double>(options.num_walkers);
}

SparseVector SingleSourceQuery(const Graph& graph, const DiagonalIndex& index,
                               NodeId q, const QueryOptions& options,
                               QueryStats* stats, const NodeOwnerFn* owner,
                               const WalkContext* context,
                               const CancelToken* cancel,
                               const WalkBackend* backend) {
  CW_CHECK_LT(q, graph.num_nodes());
  CW_CHECK_EQ(index.num_nodes(), graph.num_nodes());

  const LocalWalkBackend local(graph, context, owner);
  if (backend == nullptr) backend = &local;
  const WalkConfig cfg = WalkConfigFromQuery(index, options, cancel);
  WalkStats wq;
  const WalkDistributions dists = backend->SimRankLevels(q, cfg, &wq);

  const std::span<const double> diag = index.diagonal();
  Xoshiro256 rng =
      Xoshiro256::Derive(DeriveSeed(options.seed, 0x4d435353u /*MCSS*/), q);

  SparseAccumulator result(options.num_walkers * 4);
  SparseAccumulator ping(options.num_walkers * 2);
  SparseAccumulator pong(options.num_walkers * 2);

  double ct = 1.0;
  for (size_t t = 0; t < dists.levels.size(); ++t) {
    if (Stopped(cancel)) break;  // caller discards the truncated vector
    // z_t = c^t * D * û_{q,t}, then pushed forward t steps through P^T.
    std::vector<SparseEntry> z_entries;
    z_entries.reserve(dists.levels[t].size());
    for (const SparseEntry& e : dists.levels[t]) {
      const double v = ct * diag[e.index] * e.value;
      if (v != 0.0) z_entries.push_back(SparseEntry{e.index, v});
    }
    SparseVector z = SparseVector::FromSorted(std::move(z_entries));
    for (size_t step = 0; step < t && !z.empty(); ++step) {
      SparseAccumulator& out = (step % 2 == 0) ? ping : pong;
      if (options.push == PushStrategy::kSampled) {
        SampledPushStep(graph, z, options.push_fanout, rng, out, stats,
                        owner);
      } else {
        ExactPushStep(graph, z, options.prune_threshold, out, stats, owner);
      }
      z = out.ToSortedVector();
    }
    for (const SparseEntry& e : z) result.Add(e.index, e.value);
    ct *= index.params().decay;
  }

  if (stats != nullptr) {
    stats->walk_steps += wq.steps;
    stats->walk_crossings += wq.partition_crossings;
  }
  return result.ToSortedVector();
}

SparseVector PersonalizedPageRankQuery(const Graph& graph,
                                       const DiagonalIndex& index, NodeId q,
                                       const QueryOptions& options,
                                       QueryStats* stats,
                                       const NodeOwnerFn* owner,
                                       const WalkContext* context,
                                       const CancelToken* cancel,
                                       const WalkBackend* backend) {
  CW_CHECK_LT(q, graph.num_nodes());
  CW_CHECK_EQ(index.num_nodes(), graph.num_nodes());
  const LocalWalkBackend local(graph, context, owner);
  if (backend == nullptr) backend = &local;
  const WalkConfig cfg = WalkConfigFromQuery(index, options, cancel);
  PprParams params;
  params.alpha = options.ppr_alpha;
  WalkStats wq;
  SparseVector endpoints = backend->PprEndpoints(q, cfg, params, &wq);
  if (stats != nullptr) {
    stats->walk_steps += wq.steps;
    stats->walk_crossings += wq.partition_crossings;
  }
  if (Stopped(cancel)) return SparseVector();  // caller discards
  return endpoints;
}

SparseVector Node2VecVisitQuery(const Graph& graph, const DiagonalIndex& index,
                                NodeId q, const QueryOptions& options,
                                QueryStats* stats, const NodeOwnerFn* owner,
                                const WalkContext* context,
                                const CancelToken* cancel,
                                const WalkBackend* backend) {
  CW_CHECK_LT(q, graph.num_nodes());
  CW_CHECK_EQ(index.num_nodes(), graph.num_nodes());
  const LocalWalkBackend local(graph, context, owner);
  if (backend == nullptr) backend = &local;
  const WalkConfig cfg = WalkConfigFromQuery(index, options, cancel);
  Node2VecParams params;
  params.return_p = options.n2v_return_p;
  params.in_out_q = options.n2v_in_out_q;
  WalkStats wq;
  const WalkDistributions dists = backend->Node2VecLevels(q, cfg, params, &wq);
  if (stats != nullptr) {
    stats->walk_steps += wq.steps;
    stats->walk_crossings += wq.partition_crossings;
  }
  if (Stopped(cancel)) return SparseVector();  // caller discards

  // Average the per-level visit frequencies over steps 1..T (level 0 is
  // the source itself and would trivially dominate its own ranking).
  const uint32_t t_steps = cfg.num_steps;
  SparseAccumulator acc(options.num_walkers * 2);
  const double inv_t = 1.0 / static_cast<double>(t_steps);
  for (size_t t = 1; t < dists.levels.size(); ++t) {
    for (const SparseEntry& e : dists.levels[t]) {
      acc.Add(e.index, e.value * inv_t);
    }
  }
  return acc.ToSortedVector();
}

std::vector<ScoredNode> TopKFromSparse(const SparseVector& scores,
                                       NodeId exclude, size_t k) {
  std::vector<ScoredNode> all;
  all.reserve(scores.size());
  for (const SparseEntry& e : scores) {
    if (e.index == exclude) continue;
    all.push_back(ScoredNode{e.index, e.value});
  }
  const size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const ScoredNode& a, const ScoredNode& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.node < b.node;
                    });
  all.resize(keep);
  return all;
}

std::vector<std::vector<ScoredNode>> AllPairsTopK(
    const Graph& graph, const DiagonalIndex& index,
    const QueryOptions& options, size_t k, ThreadPool* pool,
    uint64_t* total_walk_steps, const WalkContext* context,
    const CancelToken* cancel, const WalkBackend* backend) {
  std::vector<std::vector<ScoredNode>> out(graph.num_nodes());
  std::optional<WalkContext> local_context;
  if (context == nullptr && backend == nullptr) {
    local_context.emplace(graph);  // amortized over all sources
    context = &*local_context;
  }
  std::atomic<uint64_t> steps{0};
  ParallelFor(pool, 0, graph.num_nodes(), /*grain=*/0,
              [&](uint64_t begin, uint64_t end) {
                uint64_t local_steps = 0;
                for (uint64_t q = begin; q < end; ++q) {
                  if (Stopped(cancel)) break;  // skip the remaining sources
                  QueryStats qs;
                  const SparseVector scores =
                      SingleSourceQuery(graph, index, static_cast<NodeId>(q),
                                        options, &qs, /*owner=*/nullptr,
                                        context, cancel, backend);
                  local_steps += qs.walk_steps;
                  out[q] = TopKFromSparse(scores, static_cast<NodeId>(q), k);
                }
                steps.fetch_add(local_steps, std::memory_order_relaxed);
              });
  if (total_walk_steps != nullptr) {
    *total_walk_steps += steps.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace cloudwalker
