// Distributed execution of CloudWalker on the simulated cluster, in the
// paper's two Spark models:
//
//   Broadcasting — every worker holds a full replica of the graph; work is
//     range-partitioned over nodes; diag(D) is broadcast each Jacobi round;
//     queries run driver-local (milliseconds). Fast, but the graph must fit
//     in one worker's memory.
//
//   RDD — the graph is hash-partitioned; walkers are exchanged between
//     partitions in BSP supersteps (one distributed stage per walk step),
//     and row fragments are shuffled to each source's home partition.
//     Queries pay per-stage scheduling overhead (seconds), but per-worker
//     memory is ~1/W of the graph, so the model scales to graphs no single
//     worker could hold.
//
// Numerics are identical across models (and identical to the local
// indexer): both execute the same deterministic per-source walks; only the
// simulated dataflow — and therefore the simulated cost report — differs.

#ifndef CLOUDWALKER_CORE_DISTRIBUTED_H_
#define CLOUDWALKER_CORE_DISTRIBUTED_H_

#include "cluster/cost_model.h"
#include "cluster/sim_cluster.h"
#include "common/sparse.h"
#include "common/status.h"
#include "core/diagonal.h"
#include "core/options.h"
#include "graph/graph.h"

namespace cloudwalker {

/// The paper's two Spark implementation models.
enum class ExecutionModel {
  kBroadcasting = 0,
  kRdd = 1,
};

/// Returns "Broadcasting" or "RDD".
const char* ExecutionModelName(ExecutionModel model);

/// Outcome of a distributed indexing run.
struct DistributedIndexResult {
  /// Empty (num_nodes == 0) when infeasible.
  DiagonalIndex index;
  /// Simulated cost; `cost.feasible == false` means the model could not run
  /// (e.g. Broadcasting on a graph exceeding worker memory) and `index` is
  /// empty — the paper's "N/A" cells.
  SimCostReport cost;
};

/// Runs offline indexing under `model` on a simulated cluster. Fails only on
/// invalid arguments; memory infeasibility is reported via `cost.feasible`.
StatusOr<DistributedIndexResult> DistributedBuildIndex(
    const Graph& graph, const IndexingOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool);

/// Outcome of one distributed query.
struct DistributedPairResult {
  double value = 0.0;
  SimCostReport cost;
};
struct DistributedSourceResult {
  SparseVector scores;
  SimCostReport cost;
};

/// MCSP under `model`. Results equal the local SinglePairQuery; the cost
/// report reflects the model's dataflow.
StatusOr<DistributedPairResult> DistributedSinglePair(
    const Graph& graph, const DiagonalIndex& index, NodeId i, NodeId j,
    const QueryOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool);

/// MCSS under `model`. Results equal the local SingleSourceQuery.
StatusOr<DistributedSourceResult> DistributedSingleSource(
    const Graph& graph, const DiagonalIndex& index, NodeId q,
    const QueryOptions& options, ExecutionModel model,
    const ClusterConfig& cluster_config, const CostModel& cost_model,
    ThreadPool* pool);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_DISTRIBUTED_H_
