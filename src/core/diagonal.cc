#include "core/diagonal.h"

#include "common/serialize.h"

namespace cloudwalker {
namespace {

constexpr uint64_t kIndexMagic = 0x434c574b44494147ull;  // "CLWKDIAG"
constexpr uint32_t kIndexVersion = 1;

}  // namespace

Status DiagonalIndex::Save(const std::string& path) const {
  BinaryWriter w;
  w.Write(kIndexMagic);
  w.Write(kIndexVersion);
  w.Write(params_.decay);
  w.Write(params_.num_steps);
  // Stream the view (not the owned vector) so snapshot-backed indexes save
  // identically to heap-built ones.
  w.Write<uint64_t>(diagonal_v_.size());
  w.WriteBytes(diagonal_v_.data(), diagonal_v_.size() * sizeof(double));
  return w.Flush(path);
}

StatusOr<DiagonalIndex> DiagonalIndex::Load(const std::string& path) {
  std::string buffer;
  CW_RETURN_IF_ERROR(BinaryReader::LoadFile(path, &buffer));
  BinaryReader r(buffer);
  uint64_t magic = 0;
  uint32_t version = 0;
  CW_RETURN_IF_ERROR(r.Read(&magic));
  if (magic != kIndexMagic) {
    return Status::InvalidArgument("not a CloudWalker index file: " + path);
  }
  CW_RETURN_IF_ERROR(r.Read(&version));
  if (version != kIndexVersion) {
    return Status::InvalidArgument("unsupported index version " +
                                   std::to_string(version));
  }
  SimRankParams params;
  CW_RETURN_IF_ERROR(r.Read(&params.decay));
  CW_RETURN_IF_ERROR(r.Read(&params.num_steps));
  CW_RETURN_IF_ERROR(params.Validate());
  std::vector<double> diagonal;
  CW_RETURN_IF_ERROR(r.ReadVector(&diagonal));
  return DiagonalIndex(params, std::move(diagonal));
}

}  // namespace cloudwalker
