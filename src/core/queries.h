// Online Monte-Carlo query kernels:
//   MCSP — single-pair  s(i, j), O(T R')
//   MCSS — single-source s(q, *), O(T^2 R') with the sampled push
//   MCAP — all-pairs via repeated MCSS, streamed as per-source top-k
//
// All kernels consume a DiagonalIndex built by core/indexer.h and estimate
//   s(i, j) = sum_{t=0..T} c^t (P^t e_i)^T D (P^t e_j).
// Raw estimates are returned unclamped (they can exceed [0, 1] slightly due
// to Monte-Carlo variance); the CloudWalker facade applies clamping.

#ifndef CLOUDWALKER_CORE_QUERIES_H_
#define CLOUDWALKER_CORE_QUERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/sparse.h"
#include "common/threading.h"
#include "core/diagonal.h"
#include "core/options.h"
#include "engine/walk.h"
#include "graph/graph.h"

namespace cloudwalker {

class WalkBackend;

/// Execution counters of one query. Crossing counters are only filled when
/// an owner function is supplied (simulated-cluster accounting).
struct QueryStats {
  uint64_t walk_steps = 0;            // reverse-walk steps
  uint64_t push_ops = 0;              // forward-push operations (MCSS only)
  uint64_t walk_crossings = 0;        // walk steps crossing partitions
  uint64_t push_crossings = 0;        // push ops crossing partitions
};

/// MCSP: single-pair SimRank estimate. Walker streams are derived per node,
/// so the result is exactly symmetric in (i, j). Returns 1 for i == j.
///
/// This is the empirical-distribution estimator: the two R'-walker clouds
/// are intersected level by level, giving R'^2 effective walker pairings
/// per level at O(T R') cost.
///
/// `context` (optional, here and in SingleSourceQuery / AllPairsTopK)
/// routes the walks through the batched arena kernel; results are
/// bit-identical with or without it (DESIGN.md section 8). The CloudWalker
/// facade always passes its prebuilt context.
///
/// `cancel` (optional, same three kernels) is the cooperative stop signal
/// threaded into the walk engine's level loop and the push phases; a
/// stopped kernel returns early with a truncated (meaningless) value that
/// the caller must discard after observing cancel->ShouldStop().
///
/// `backend` (optional, every walk-running kernel) supplies the walk phase
/// (engine/walk_backend.h) — e.g. the in-process sharded BSP engine. Null
/// runs the single-node batched kernel over (graph, context, owner). The
/// combine phases are shared, so any backend that reproduces the
/// single-node walk distributions yields bit-identical query results.
double SinglePairQuery(const Graph& graph, const DiagonalIndex& index,
                       NodeId i, NodeId j, const QueryOptions& options,
                       QueryStats* stats = nullptr,
                       const NodeOwnerFn* owner = nullptr,
                       const WalkContext* context = nullptr,
                       const CancelToken* cancel = nullptr,
                       const WalkBackend* backend = nullptr);

/// Classic paired-walker MCSP estimator (ablation; DESIGN.md section 5.3):
/// R' walker *pairs* advance in lockstep and the estimate is
/// (1/R') sum_r sum_t c^t x_{a_t^r} [a_t^r == b_t^r]. Unbiased for the same
/// quantity as SinglePairQuery but with only R' pairings per level, so its
/// variance is higher at equal walk cost. Exactly symmetric in (i, j).
double SinglePairQueryPaired(const Graph& graph, const DiagonalIndex& index,
                             NodeId i, NodeId j, const QueryOptions& options,
                             QueryStats* stats = nullptr);

/// MCSS: single-source SimRank estimates s(q, v) for all v, as a sparse
/// vector (absent nodes estimate to 0). The self-entry holds the diagonal
/// *estimate* (close to 1 when the index converged), not a hard-coded 1.
SparseVector SingleSourceQuery(const Graph& graph, const DiagonalIndex& index,
                               NodeId q, const QueryOptions& options,
                               QueryStats* stats = nullptr,
                               const NodeOwnerFn* owner = nullptr,
                               const WalkContext* context = nullptr,
                               const CancelToken* cancel = nullptr,
                               const WalkBackend* backend = nullptr);

/// A node with its similarity score.
struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;

  bool operator==(const ScoredNode&) const = default;
};

/// Extracts the k highest-scoring entries of `scores` (excluding `exclude`,
/// pass kInvalidNode to keep all), sorted by descending score then ascending
/// node id.
std::vector<ScoredNode> TopKFromSparse(const SparseVector& scores,
                                       NodeId exclude, size_t k);

/// Personalized PageRank query kernel (QueryKind::kPersonalizedPageRank):
/// the empirical endpoint distribution of options.num_walkers teleport
/// walks from q (continuation probability options.ppr_alpha, truncated
/// after the index's T steps; engine/walk_program.h). Scores are endpoint
/// frequencies in [0, 1]. Uses the index only for T, keeping every query
/// kind's walk length governed by the same snapshot parameter.
SparseVector PersonalizedPageRankQuery(const Graph& graph,
                                       const DiagonalIndex& index, NodeId q,
                                       const QueryOptions& options,
                                       QueryStats* stats = nullptr,
                                       const NodeOwnerFn* owner = nullptr,
                                       const WalkContext* context = nullptr,
                                       const CancelToken* cancel = nullptr,
                                       const WalkBackend* backend = nullptr);

/// node2vec visit-frequency query kernel (QueryKind::kNode2Vec): runs
/// second-order biased walks from q (options.n2v_return_p /
/// options.n2v_in_out_q; engine/walk_program.h) and scores each node by
/// its average visit frequency over steps 1..T,
///   score(v) = (1/T) sum_{t=1..T} û_t(v),
/// a number in [0, 1] (1 = every walker sits on v at every step).
SparseVector Node2VecVisitQuery(const Graph& graph,
                                const DiagonalIndex& index, NodeId q,
                                const QueryOptions& options,
                                QueryStats* stats = nullptr,
                                const NodeOwnerFn* owner = nullptr,
                                const WalkContext* context = nullptr,
                                const CancelToken* cancel = nullptr,
                                const WalkBackend* backend = nullptr);

/// MCAP: runs MCSS from every node (parallel across sources) and keeps the
/// top-k similar nodes per source. O(n T^2 R') — the n x n result is never
/// materialized. `total_walk_steps` (optional) accumulates walk counters.
/// Builds a WalkContext internally when none is supplied (amortized over
/// all sources).
std::vector<std::vector<ScoredNode>> AllPairsTopK(
    const Graph& graph, const DiagonalIndex& index,
    const QueryOptions& options, size_t k, ThreadPool* pool,
    uint64_t* total_walk_steps = nullptr,
    const WalkContext* context = nullptr,
    const CancelToken* cancel = nullptr,
    const WalkBackend* backend = nullptr);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_QUERIES_H_
