#include "core/incremental.h"

#include <algorithm>
#include <span>

#include "common/logging.h"
#include "graph/components.h"

namespace cloudwalker {

StatusOr<IncrementalIndexer::State> IncrementalIndexer::Initialize(
    const Graph& graph, ThreadPool* pool) const {
  CW_RETURN_IF_ERROR(options_.Validate());
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot index an empty graph");
  }
  State state;
  IndexRows rows = BuildIndexRows(graph, options_, pool);
  state.rows = std::move(rows.rows);

  const double x0 = options_.initial_diagonal >= 0.0
                        ? options_.initial_diagonal
                        : 1.0 - options_.params.decay;
  std::vector<double> x(graph.num_nodes(), x0);
  for (uint32_t it = 0; it < options_.jacobi_iterations; ++it) {
    x = JacobiSweep(state.rows, x, pool);
  }
  state.index = DiagonalIndex(options_.params, std::move(x));
  return state;
}

std::vector<NodeId> IncrementalIndexer::DirtyNodes(
    const Graph& graph, const std::vector<EdgeUpdate>& updates) const {
  // A node k is dirty iff its reverse walks can visit a node whose in-set
  // changed (the head `to` of any update) and then take at least one more
  // step — i.e. k lies within T-1 *forward* hops of some update head on
  // the post-update graph. (For removed edges the first removed edge along
  // any stale walk path is itself an update head reachable on the new
  // graph, so heads of the new graph cover removals too.)
  std::vector<bool> dirty(graph.num_nodes(), false);
  const uint32_t radius =
      options_.params.num_steps > 0 ? options_.params.num_steps - 1 : 0;
  for (const EdgeUpdate& u : updates) {
    if (u.to >= graph.num_nodes()) continue;  // validated by ApplyUpdates
    for (const BfsVisit& visit :
         BfsReachable(graph, u.to, Direction::kForward, radius)) {
      dirty[visit.node] = true;
    }
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (dirty[v]) out.push_back(v);
  }
  return out;
}

StatusOr<IncrementalIndexer::State> IncrementalIndexer::ApplyUpdates(
    const Graph& updated_graph, const std::vector<EdgeUpdate>& updates,
    State state, ThreadPool* pool) const {
  if (updated_graph.num_nodes() != state.index.num_nodes()) {
    return Status::FailedPrecondition(
        "incremental updates require a stable node-id space (got " +
        std::to_string(updated_graph.num_nodes()) + " nodes, state has " +
        std::to_string(state.index.num_nodes()) + ")");
  }
  for (const EdgeUpdate& u : updates) {
    if (u.from >= updated_graph.num_nodes() ||
        u.to >= updated_graph.num_nodes()) {
      return Status::InvalidArgument("edge update endpoint out of range");
    }
  }

  const std::vector<NodeId> dirty = DirtyNodes(updated_graph, updates);
  state.last_dirty_count = dirty.size();

  // Re-estimate exactly the dirty rows. Per-node seeds match a full
  // rebuild, so the row *matrix* is bit-identical to rebuilding from
  // scratch; the solve below warm-starts from the previous diagonal and
  // therefore converges to the same solution (not bit-identically —
  // usually closer, since the warm start is already near the fixpoint).
  ParallelFor(pool, 0, dirty.size(), /*grain=*/0,
              [&](uint64_t begin, uint64_t end) {
                WalkScratch scratch_walk(options_.num_walkers);
                SparseAccumulator scratch_row(
                    options_.num_walkers * (options_.params.num_steps + 1));
                for (uint64_t i = begin; i < end; ++i) {
                  state.rows[dirty[i]] =
                      BuildIndexRow(updated_graph, dirty[i], options_,
                                    &scratch_walk, &scratch_row);
                }
              });

  // Warm-started re-solve over all rows.
  const std::span<const double> d = state.index.diagonal();
  std::vector<double> x(d.begin(), d.end());
  for (uint32_t it = 0; it < options_.jacobi_iterations; ++it) {
    x = JacobiSweep(state.rows, x, pool);
  }
  state.index = DiagonalIndex(options_.params, std::move(x));
  return state;
}

}  // namespace cloudwalker
