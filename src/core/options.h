// User-facing option structs for CloudWalker indexing and queries.
// Defaults are the paper's Table of default parameters:
//   c = 0.6, T = 10, L = 3, R = 100, R' = 10,000.

#ifndef CLOUDWALKER_CORE_OPTIONS_H_
#define CLOUDWALKER_CORE_OPTIONS_H_

#include <cstdint>

#include "common/status.h"
#include "engine/walk.h"

namespace cloudwalker {

/// The SimRank measure itself: decay factor c and series truncation T.
struct SimRankParams {
  /// Decay factor c in (0, 1).
  double decay = 0.6;
  /// Number of walk steps T (series truncated after c^T terms).
  uint32_t num_steps = 10;

  /// InvalidArgument unless 0 < decay < 1 and num_steps >= 1.
  Status Validate() const;

  bool operator==(const SimRankParams& o) const {
    return decay == o.decay && num_steps == o.num_steps;
  }
};

/// How the Jacobi solver obtains row a_k at each iteration.
enum class RowMode {
  /// Materialize all sparse rows once (O(n * R * T) memory, fastest).
  kStoreRows = 0,
  /// Re-run the (deterministically seeded) walks every iteration
  /// (O(n) memory, L+1 times the walk work) — the big-graph regime.
  kRegenerate = 1,
};

/// Offline indexing (estimation of diag(D)) parameters.
struct IndexingOptions {
  SimRankParams params;
  /// R — Monte-Carlo walkers per node when estimating rows of A.
  uint32_t num_walkers = 100;
  /// L — Jacobi iterations for A x = 1.
  uint32_t jacobi_iterations = 3;
  /// Master seed for all index-time randomness.
  uint64_t seed = 1;
  /// Row storage strategy (see RowMode).
  RowMode row_mode = RowMode::kStoreRows;
  /// Starting guess for diag(D); a negative value selects 1 - c, the exact
  /// solution on cycle-like graphs and the customary initialization.
  double initial_diagonal = -1.0;
  /// Behaviour at dangling (in-degree-0) nodes.
  DanglingPolicy dangling = DanglingPolicy::kDie;
  /// Also compute the residual max_k |(A x)_k - 1| after every iteration
  /// (one extra sweep each; useful for convergence studies).
  bool track_residuals = false;

  /// InvalidArgument unless params validate, num_walkers >= 1 and
  /// jacobi_iterations >= 1.
  Status Validate() const;
};

/// Strategy for the (P^T)^t push inside single-source queries.
enum class PushStrategy {
  /// One weighted sample per non-zero per step: O(T^2 R') total, the
  /// paper-shaped constant-cost estimator.
  kSampled = 0,
  /// Exact sparse propagation with optional epsilon pruning: cost grows
  /// with graph density; higher accuracy. Ablation mode.
  kExact = 1,
};

/// Online query (MCSP / MCSS / MCAP) parameters.
struct QueryOptions {
  /// R' — Monte-Carlo walkers per query source.
  uint32_t num_walkers = 10000;
  /// Seed for query-time randomness (streams derived per source node, so
  /// SinglePair(i, j) == SinglePair(j, i) exactly).
  uint64_t seed = 97;
  /// Single-source push strategy.
  PushStrategy push = PushStrategy::kSampled;
  /// kSampled: weighted samples drawn per non-zero per step (>= 1).
  /// Larger values reduce variance at proportional cost.
  uint32_t push_fanout = 1;
  /// kExact: entries with |mass| below this are dropped each step
  /// (0 disables pruning).
  double prune_threshold = 0.0;
  /// Behaviour at dangling nodes (must match the index to be meaningful).
  DanglingPolicy dangling = DanglingPolicy::kDie;
  /// kPersonalizedPageRank: continuation probability alpha in (0, 1).
  double ppr_alpha = 0.85;
  /// kNode2Vec: return parameter p (> 0); revisiting the previous node is
  /// weighted 1/p.
  double n2v_return_p = 1.0;
  /// kNode2Vec: in-out parameter q (> 0); distance-2 nodes are weighted
  /// 1/q (distance-1 nodes keep weight 1).
  double n2v_in_out_q = 1.0;

  /// InvalidArgument unless num_walkers >= 1, push_fanout >= 1,
  /// prune_threshold >= 0, 0 < ppr_alpha < 1, n2v_return_p > 0 and
  /// n2v_in_out_q > 0. Shim over ValidateQueryOptions() below.
  Status Validate() const;

  /// Two option sets are equal iff every knob matches — the relation the
  /// serving layer uses to fold per-request overrides into cache keys
  /// (equal options, equal answers; DESIGN.md section 6).
  bool operator==(const QueryOptions&) const = default;
};

/// The single source of truth for query-option validation. Every layer
/// that admits a QueryOptions — the CloudWalker facade, QueryService
/// admission, the CLI flag parser — calls this one function, so invalid
/// options are rejected with the same message everywhere.
Status ValidateQueryOptions(const QueryOptions& options);

/// Deterministic 64-bit digest of every QueryOptions knob. Equal options
/// hash equal (it feeds the serving layer's intern-table buckets; equality
/// is always re-verified there) and the snapshot format stamps it into the
/// build metadata so an operator can tell which default options a snapshot
/// was validated against (DESIGN.md section 9).
uint64_t QueryOptionsFingerprint(const QueryOptions& options);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_OPTIONS_H_
