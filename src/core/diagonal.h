// DiagonalIndex: the offline artifact of CloudWalker — diag(D) of the
// SimRank linearization S = sum_t c^t (P^T)^t D P^t, together with the
// SimRank parameters it was estimated under. Persistable.

#ifndef CLOUDWALKER_CORE_DIAGONAL_H_
#define CLOUDWALKER_CORE_DIAGONAL_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Immutable diag(D) estimate for one graph + parameter set. Span-backed
/// like Graph / AliasArena: a built index owns its vector, FromView wraps
/// an external array (an mmapped snapshot, DESIGN.md section 9) zero-copy.
/// Copies materialize into owned storage; moves preserve the mode.
class DiagonalIndex {
 public:
  /// An empty index (num_nodes() == 0).
  DiagonalIndex() { diagonal_v_ = diagonal_; }

  /// Wraps an estimated diagonal. `diagonal[k]` is D_kk.
  DiagonalIndex(SimRankParams params, std::vector<double> diagonal)
      : params_(params), diagonal_(std::move(diagonal)) {
    diagonal_v_ = diagonal_;
  }

  DiagonalIndex(const DiagonalIndex& other) { CopyFrom(other); }
  DiagonalIndex& operator=(const DiagonalIndex& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  // Vector moves keep the heap buffer in place, so the span stays valid.
  DiagonalIndex(DiagonalIndex&&) noexcept = default;
  DiagonalIndex& operator=(DiagonalIndex&&) noexcept = default;

  /// Wraps an externally owned diagonal without copying; the array must
  /// outlive the index and every move of it.
  static DiagonalIndex FromView(SimRankParams params,
                                std::span<const double> diagonal) {
    DiagonalIndex index;
    index.params_ = params;
    index.diagonal_v_ = diagonal;
    return index;
  }

  /// False when the diagonal aliases external memory (FromView).
  bool owns_storage() const { return diagonal_v_.data() == diagonal_.data(); }

  /// SimRank parameters (c, T) the diagonal was estimated for.
  const SimRankParams& params() const { return params_; }

  /// Number of nodes covered.
  NodeId num_nodes() const { return static_cast<NodeId>(diagonal_v_.size()); }

  /// D_kk (unchecked).
  double operator[](NodeId k) const { return diagonal_v_[k]; }

  /// The full diagonal.
  std::span<const double> diagonal() const { return diagonal_v_; }

  /// Writes the index to `path` (binary, versioned).
  Status Save(const std::string& path) const;

  /// Reads an index written by Save.
  static StatusOr<DiagonalIndex> Load(const std::string& path);

 private:
  void CopyFrom(const DiagonalIndex& other) {
    params_ = other.params_;
    diagonal_.assign(other.diagonal_v_.begin(), other.diagonal_v_.end());
    diagonal_v_ = diagonal_;
  }

  SimRankParams params_;
  std::vector<double> diagonal_;        // owned backing (empty in view mode)
  std::span<const double> diagonal_v_;  // what the accessors read
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_DIAGONAL_H_
