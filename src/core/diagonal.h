// DiagonalIndex: the offline artifact of CloudWalker — diag(D) of the
// SimRank linearization S = sum_t c^t (P^T)^t D P^t, together with the
// SimRank parameters it was estimated under. Persistable.

#ifndef CLOUDWALKER_CORE_DIAGONAL_H_
#define CLOUDWALKER_CORE_DIAGONAL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Immutable diag(D) estimate for one graph + parameter set.
class DiagonalIndex {
 public:
  /// An empty index (num_nodes() == 0).
  DiagonalIndex() = default;

  /// Wraps an estimated diagonal. `diagonal[k]` is D_kk.
  DiagonalIndex(SimRankParams params, std::vector<double> diagonal)
      : params_(params), diagonal_(std::move(diagonal)) {}

  /// SimRank parameters (c, T) the diagonal was estimated for.
  const SimRankParams& params() const { return params_; }

  /// Number of nodes covered.
  NodeId num_nodes() const { return static_cast<NodeId>(diagonal_.size()); }

  /// D_kk (unchecked).
  double operator[](NodeId k) const { return diagonal_[k]; }

  /// The full diagonal.
  const std::vector<double>& diagonal() const { return diagonal_; }

  /// Writes the index to `path` (binary, versioned).
  Status Save(const std::string& path) const;

  /// Reads an index written by Save.
  static StatusOr<DiagonalIndex> Load(const std::string& path);

 private:
  SimRankParams params_;
  std::vector<double> diagonal_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_DIAGONAL_H_
