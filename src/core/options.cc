#include "core/options.h"

namespace cloudwalker {

Status SimRankParams::Validate() const {
  if (!(decay > 0.0) || !(decay < 1.0)) {
    return Status::InvalidArgument("decay factor c must lie in (0, 1)");
  }
  if (num_steps < 1) {
    return Status::InvalidArgument("num_steps T must be >= 1");
  }
  return Status::Ok();
}

Status IndexingOptions::Validate() const {
  CW_RETURN_IF_ERROR(params.Validate());
  if (num_walkers < 1) {
    return Status::InvalidArgument("num_walkers R must be >= 1");
  }
  if (jacobi_iterations < 1) {
    return Status::InvalidArgument("jacobi_iterations L must be >= 1");
  }
  return Status::Ok();
}

Status QueryOptions::Validate() const { return ValidateQueryOptions(*this); }

Status ValidateQueryOptions(const QueryOptions& options) {
  if (options.num_walkers < 1) {
    return Status::InvalidArgument("num_walkers R' must be >= 1");
  }
  if (options.push_fanout < 1) {
    return Status::InvalidArgument("push_fanout must be >= 1");
  }
  if (options.prune_threshold < 0.0) {
    return Status::InvalidArgument("prune_threshold must be >= 0");
  }
  return Status::Ok();
}

}  // namespace cloudwalker
