#include "core/options.h"

#include <bit>

#include "common/random.h"

namespace cloudwalker {

Status SimRankParams::Validate() const {
  if (!(decay > 0.0) || !(decay < 1.0)) {
    return Status::InvalidArgument("decay factor c must lie in (0, 1)");
  }
  if (num_steps < 1) {
    return Status::InvalidArgument("num_steps T must be >= 1");
  }
  return Status::Ok();
}

Status IndexingOptions::Validate() const {
  CW_RETURN_IF_ERROR(params.Validate());
  if (num_walkers < 1) {
    return Status::InvalidArgument("num_walkers R must be >= 1");
  }
  if (jacobi_iterations < 1) {
    return Status::InvalidArgument("jacobi_iterations L must be >= 1");
  }
  return Status::Ok();
}

Status QueryOptions::Validate() const { return ValidateQueryOptions(*this); }

Status ValidateQueryOptions(const QueryOptions& options) {
  if (options.num_walkers < 1) {
    return Status::InvalidArgument("num_walkers R' must be >= 1");
  }
  if (options.push_fanout < 1) {
    return Status::InvalidArgument("push_fanout must be >= 1");
  }
  if (options.prune_threshold < 0.0) {
    return Status::InvalidArgument("prune_threshold must be >= 0");
  }
  if (!(options.ppr_alpha > 0.0) || !(options.ppr_alpha < 1.0)) {
    return Status::InvalidArgument("ppr_alpha must lie in (0, 1)");
  }
  if (!(options.n2v_return_p > 0.0)) {
    return Status::InvalidArgument("n2v_return_p must be > 0");
  }
  if (!(options.n2v_in_out_q > 0.0)) {
    return Status::InvalidArgument("n2v_in_out_q must be > 0");
  }
  return Status::Ok();
}

uint64_t QueryOptionsFingerprint(const QueryOptions& o) {
  uint64_t h = DeriveSeed(o.seed, o.num_walkers);
  h = DeriveSeed(h, (static_cast<uint64_t>(o.push_fanout) << 8) |
                        (static_cast<uint64_t>(o.push) << 4) |
                        static_cast<uint64_t>(o.dangling));
  h = DeriveSeed(h, std::bit_cast<uint64_t>(o.prune_threshold));
  h = DeriveSeed(h, std::bit_cast<uint64_t>(o.ppr_alpha));
  h = DeriveSeed(h, std::bit_cast<uint64_t>(o.n2v_return_p));
  return DeriveSeed(h, std::bit_cast<uint64_t>(o.n2v_in_out_q));
}

}  // namespace cloudwalker
