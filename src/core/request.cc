#include "core/request.h"

#include <string>

namespace cloudwalker {
namespace {

Status NodeInRange(std::string_view role, NodeId node, NodeId num_nodes) {
  if (node < num_nodes) return Status::Ok();
  return Status::OutOfRange(std::string(role) + " node " +
                            std::to_string(node) +
                            " out of range (graph has " +
                            std::to_string(num_nodes) + " nodes)");
}

}  // namespace

std::string_view QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPair:
      return "pair";
    case QueryKind::kSingleSource:
      return "source";
    case QueryKind::kSourceTopK:
      return "topk";
    case QueryKind::kAllPairsTopK:
      return "allpairs";
    case QueryKind::kPersonalizedPageRank:
      return "ppr";
    case QueryKind::kNode2Vec:
      return "n2v";
  }
  return "unknown";
}

std::optional<QueryKind> QueryKindFromString(std::string_view name) {
  for (const QueryKind kind : kAllQueryKinds) {
    if (QueryKindToString(kind) == name) return kind;
  }
  return std::nullopt;
}

Status ValidateQueryRequest(const QueryRequest& request, NodeId num_nodes,
                            const QueryOptions& base_options) {
  CW_RETURN_IF_ERROR(
      ValidateQueryOptions(request.EffectiveOptions(base_options)));
  switch (request.kind) {
    case QueryKind::kPair:
      CW_RETURN_IF_ERROR(NodeInRange("pair", request.a, num_nodes));
      return NodeInRange("pair", request.b, num_nodes);
    case QueryKind::kSingleSource:
    case QueryKind::kSourceTopK:
    case QueryKind::kPersonalizedPageRank:
    case QueryKind::kNode2Vec:
      return NodeInRange("source", request.a, num_nodes);
    case QueryKind::kAllPairsTopK:
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace cloudwalker
