// The unified typed query pipeline: one request variant covering every
// query shape the library answers, one response variant carrying the
// typed payload plus execution metadata.
//
//   QueryRequest req = QueryRequest::SourceTopK(42, 10)
//                          .WithTimeout(0.050)        // 50 ms deadline
//                          .WithOptions(my_options);  // per-request R', seed
//   QueryResponse r = cloudwalker.Execute(req);       // facade, blocking
//   QueryFuture f = service.Submit(req);              // serving, async
//   if (r.ok()) use(*r.Get<QueryKind::kSourceTopK>());
//
// One request kind exists per online query shape of the paper (DESIGN.md
// section 5) plus the all-pairs sweep:
//   kPair         — MCSP s(a, b)                     -> double
//   kSingleSource — MCSS s(a, *), the full vector    -> SparseVector
//   kSourceTopK   — MCSS + top-k                     -> vector<ScoredNode>
//   kAllPairsTopK — MCAP, per-source top-k, all a    -> vector<vector<...>>
// plus two walk-program kinds served by the same engine / cache / snapshot
// stack (DESIGN.md section 10):
//   kPersonalizedPageRank — PPR endpoint top-k around a  -> vector<ScoredNode>
//   kNode2Vec             — node2vec visit top-k around a -> vector<ScoredNode>
//
// A request may carry a per-request QueryOptions override; it is validated
// once at admission (ValidateQueryRequest) and folded into the serving
// layer's cache key, so the one-answer-per-key determinism contract
// survives heterogeneous option traffic (DESIGN.md section 6). Deadlines
// are relative (`timeout_seconds`; non-positive = none) and are armed on a
// CancelToken at admission by whoever executes the request.

#ifndef CLOUDWALKER_CORE_REQUEST_H_
#define CLOUDWALKER_CORE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/sparse.h"
#include "common/status.h"
#include "core/options.h"
#include "core/queries.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Every query shape the library answers, as one closed enum. Kinds
/// kPersonalizedPageRank / kNode2Vec rank by walk-program scores
/// (engine/walk_program.h) instead of SimRank; the serving layer encodes
/// the kind into its 128-bit cache key in a 4-bit field, so values must
/// stay <= 15.
enum class QueryKind : uint8_t {
  kPair = 0,                  // MCSP: s(a, b)
  kSingleSource = 1,          // MCSS: the full sparse similarity vector of a
  kSourceTopK = 2,            // MCSS + top-k: the k nodes most similar to a
  kAllPairsTopK = 3,          // MCAP: per-source top-k over every source
  kPersonalizedPageRank = 4,  // PPR top-k around a source (teleport walks)
  kNode2Vec = 5,              // node2vec visit-frequency top-k around a source
};

/// Every QueryKind, for exhaustive iteration (tests, workload tooling).
/// Keep in sync with the enum — request_test cross-checks each entry
/// round-trips through QueryKindToString / QueryKindFromString.
inline constexpr QueryKind kAllQueryKinds[] = {
    QueryKind::kPair,          QueryKind::kSingleSource,
    QueryKind::kSourceTopK,    QueryKind::kAllPairsTopK,
    QueryKind::kPersonalizedPageRank, QueryKind::kNode2Vec,
};

/// Canonical lower-case name of `kind` ("pair", "source", "topk",
/// "allpairs", "ppr", "n2v") — also the verb vocabulary of workload
/// replay files.
std::string_view QueryKindToString(QueryKind kind);

/// Inverse of QueryKindToString: parses a canonical kind name; nullopt for
/// anything else (including "unknown").
std::optional<QueryKind> QueryKindFromString(std::string_view name);

/// One typed query. Build with the factory helpers; `a`/`b`/`k` are only
/// meaningful for the kinds documented on each factory.
struct QueryRequest {
  QueryKind kind = QueryKind::kPair;
  NodeId a = 0;    // pair: i; single-source / top-k: the source node
  NodeId b = 0;    // pair: j
  uint32_t k = 0;  // top-k / all-pairs: result size per source

  /// Per-request override of the executor's default QueryOptions. Folded
  /// into the serving cache key, so two requests differing only here can
  /// never share an answer.
  std::optional<QueryOptions> options;

  /// Relative deadline, armed at admission; non-positive = no deadline.
  /// An expired request completes with kDeadlineExceeded instead of an
  /// answer (checked at admission and between walk blocks).
  double timeout_seconds = 0.0;

  static QueryRequest Pair(NodeId i, NodeId j) {
    QueryRequest r;
    r.kind = QueryKind::kPair;
    r.a = i;
    r.b = j;
    return r;
  }
  static QueryRequest SingleSource(NodeId q) {
    QueryRequest r;
    r.kind = QueryKind::kSingleSource;
    r.a = q;
    return r;
  }
  static QueryRequest SourceTopK(NodeId q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kSourceTopK;
    r.a = q;
    r.k = k;
    return r;
  }
  static QueryRequest AllPairsTopK(uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kAllPairsTopK;
    r.k = k;
    return r;
  }
  static QueryRequest PersonalizedPageRank(NodeId q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kPersonalizedPageRank;
    r.a = q;
    r.k = k;
    return r;
  }
  static QueryRequest Node2Vec(NodeId q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kNode2Vec;
    r.a = q;
    r.k = k;
    return r;
  }

  /// Fluent decorators, so one-liners stay one-liners.
  QueryRequest WithOptions(QueryOptions o) const {
    QueryRequest r = *this;
    r.options = std::move(o);
    return r;
  }
  QueryRequest WithTimeout(double seconds) const {
    QueryRequest r = *this;
    r.timeout_seconds = seconds;
    return r;
  }

  /// The options this request executes under: its override, else `base`.
  const QueryOptions& EffectiveOptions(const QueryOptions& base) const {
    return options.has_value() ? *options : base;
  }

  bool operator==(const QueryRequest&) const = default;
};

/// Admission-time validation, shared by the facade and the serving layer:
/// the effective options must pass ValidateQueryOptions() and every node
/// the kind references must lie in [0, num_nodes).
Status ValidateQueryRequest(const QueryRequest& request, NodeId num_nodes,
                            const QueryOptions& base_options);

/// Payload aliases (shared so cached answers fan out without copying).
using TopKResult = std::vector<ScoredNode>;
using AllPairsResult = std::vector<std::vector<ScoredNode>>;
using SingleSourcePtr = std::shared_ptr<const SparseVector>;
using TopKPtr = std::shared_ptr<const TopKResult>;
using AllPairsPtr = std::shared_ptr<const AllPairsResult>;

namespace internal {
/// Maps a QueryKind to its payload type (the `Get<kind>()` plumbing).
template <QueryKind K>
struct QueryPayload;
template <>
struct QueryPayload<QueryKind::kPair> {
  using type = double;
};
template <>
struct QueryPayload<QueryKind::kSingleSource> {
  using type = SingleSourcePtr;
};
template <>
struct QueryPayload<QueryKind::kSourceTopK> {
  using type = TopKPtr;
};
template <>
struct QueryPayload<QueryKind::kAllPairsTopK> {
  using type = AllPairsPtr;
};
template <>
struct QueryPayload<QueryKind::kPersonalizedPageRank> {
  using type = TopKPtr;
};
template <>
struct QueryPayload<QueryKind::kNode2Vec> {
  using type = TopKPtr;
};
}  // namespace internal

/// One answered query: a uniform Status, the kind-typed payload, and
/// execution metadata. The payload holds std::monostate whenever `status`
/// is not OK (a stopped or rejected request never carries a partial
/// answer).
struct QueryResponse {
  Status status;
  QueryKind kind = QueryKind::kPair;
  std::variant<std::monostate, double, SingleSourcePtr, TopKPtr, AllPairsPtr>
      payload;

  /// Execution metadata: kernel counters (zeros for cached / deduped /
  /// failed requests), wall time, and answer provenance. The serving
  /// layer measures `latency_seconds` from admission, so queue wait and
  /// dedup wait are included for every requester.
  QueryStats stats;
  double latency_seconds = 0.0;
  bool cache_hit = false;  // answered straight from the result cache
  bool deduped = false;    // joined a concurrent identical computation

  bool ok() const { return status.ok(); }

  /// Typed accessor: `r.Get<QueryKind::kSourceTopK>()` yields the payload
  /// of that kind (a reference into the variant). Accessing a kind the
  /// response does not hold throws std::bad_variant_access — check
  /// `ok()` and `kind` first.
  template <QueryKind K>
  const typename internal::QueryPayload<K>::type& Get() const {
    return std::get<typename internal::QueryPayload<K>::type>(payload);
  }

  /// Kind-named conveniences over Get<>(). `topk()` resolves by payload
  /// type, so it also reads kPersonalizedPageRank / kNode2Vec answers
  /// (all three carry a TopKPtr).
  double score() const { return Get<QueryKind::kPair>(); }
  const SingleSourcePtr& scores() const {
    return Get<QueryKind::kSingleSource>();
  }
  const TopKPtr& topk() const { return Get<QueryKind::kSourceTopK>(); }
  const AllPairsPtr& all_pairs() const {
    return Get<QueryKind::kAllPairsTopK>();
  }
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CORE_REQUEST_H_
