#include "core/cloudwalker.h"

#include <algorithm>

#include "common/timer.h"
#include "common/version.h"
#include "engine/parallel_walk.h"
#include "engine/walk_backend.h"
#include "net/remote_backend.h"
#include "ooc/ooc_backend.h"
#include "ooc/paged_snapshot.h"
#include "ooc/reorder.h"
#include "shard/sharded_engine.h"
#include "snapshot/snapshot.h"

namespace cloudwalker {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Reconstructs the build-time knobs a snapshot's metadata block records
// (shared by the in-memory and out-of-core open paths).
IndexingOptions OptionsFromMetadata(const SimRankParams& params,
                                    const SnapshotMetadata& meta) {
  IndexingOptions options;
  options.params = params;
  options.num_walkers = meta.num_walkers;
  options.jacobi_iterations = meta.jacobi_iterations;
  options.seed = meta.seed;
  options.row_mode = static_cast<RowMode>(meta.row_mode);
  options.dangling = static_cast<DanglingPolicy>(meta.dangling);
  options.initial_diagonal = meta.initial_diagonal;
  return options;
}

IndexingStats StatsFromMetadata(const SnapshotMetadata& meta) {
  IndexingStats stats;
  stats.walk_steps = meta.walk_steps;
  stats.walk_seconds = meta.build_seconds;
  return stats;
}

}  // namespace

StatusOr<CloudWalker> CloudWalker::Build(const Graph* graph,
                                         const IndexingOptions& options,
                                         ThreadPool* pool) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  IndexingStats stats;
  CW_ASSIGN_OR_RETURN(DiagonalIndex index,
                      BuildDiagonalIndex(*graph, options, pool, &stats));
  return CloudWalker(graph, std::move(index), stats, options);
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Build(
    Graph&& graph, const IndexingOptions& options, ThreadPool* pool) {
  auto owned = std::make_shared<const Graph>(std::move(graph));
  CW_ASSIGN_OR_RETURN(CloudWalker built, Build(owned.get(), options, pool));
  built.owned_graph_ = std::move(owned);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(built)));
}

StatusOr<CloudWalker> CloudWalker::FromIndex(const Graph* graph,
                                             DiagonalIndex index) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (index.num_nodes() != graph->num_nodes()) {
    return Status::FailedPrecondition(
        "index covers " + std::to_string(index.num_nodes()) +
        " nodes but the graph has " + std::to_string(graph->num_nodes()));
  }
  IndexingOptions options;
  options.params = index.params();
  return CloudWalker(graph, std::move(index), IndexingStats{}, options);
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::FromIndex(
    Graph&& graph, DiagonalIndex index) {
  auto owned = std::make_shared<const Graph>(std::move(graph));
  CW_ASSIGN_OR_RETURN(CloudWalker built,
                      FromIndex(owned.get(), std::move(index)));
  built.owned_graph_ = std::move(owned);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(built)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Shard(
    const std::shared_ptr<const CloudWalker>& base,
    const ShardingOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  if (base->ooc_backend_ != nullptr) {
    return Status::FailedPrecondition(
        "Shard requires an in-memory graph: an out-of-core instance pages "
        "its edges through the walker-block scheduler instead");
  }
  if (!base->int_to_ext_.empty()) {
    return Status::FailedPrecondition(
        "Shard does not support locality-reordered snapshots: replacing "
        "the walk backend would drop the external-id RNG keying");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const ShardedWalkEngine> engine,
      ShardedWalkEngine::Build(base->graph(), base->walk_context_.get(),
                               options));
  // The copy shares the graph / arena / snapshot ownership with `base`, so
  // the borrowed pointers inside the engine stay pinned even after the
  // caller drops `base`. (A borrowed-graph base keeps its original
  // contract: the external graph must outlive the sharded instance too.)
  CloudWalker sharded(*base);
  sharded.walk_backend_ = std::move(engine);
  return std::shared_ptr<const CloudWalker>(new CloudWalker(std::move(sharded)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Parallelize(
    const std::shared_ptr<const CloudWalker>& base,
    const ParallelWalkOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  if (base->ooc_backend_ != nullptr) {
    return Status::FailedPrecondition(
        "Parallelize requires an in-memory graph: an out-of-core instance "
        "pages its edges through the walker-block scheduler instead");
  }
  if (!base->int_to_ext_.empty()) {
    return Status::FailedPrecondition(
        "Parallelize does not support locality-reordered snapshots: "
        "replacing the walk backend would drop the external-id RNG keying");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const ParallelWalkExecutor> executor,
      ParallelWalkExecutor::Build(base->graph(), base->walk_context_.get(),
                                  options));
  // Same ownership story as Shard(): the copy pins base's graph / arena /
  // snapshot for the executor's borrowed pointers.
  CloudWalker parallel(*base);
  parallel.walk_backend_ = std::move(executor);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(parallel)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Distribute(
    const std::shared_ptr<const CloudWalker>& base,
    const RemoteBackendOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  if (base->snapshot_ == nullptr) {
    return Status::FailedPrecondition(
        "Distribute requires a snapshot-backed engine (CloudWalker::Open): "
        "the handshake pins the snapshot fingerprint so coordinator and "
        "workers provably serve the same artifact");
  }
  if (!base->int_to_ext_.empty()) {
    return Status::FailedPrecondition(
        "Distribute does not support locality-reordered snapshots: the "
        "wire protocol does not carry the external-id RNG keying");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const RemoteWalkBackend> backend,
      RemoteWalkBackend::Connect(base->graph(),
                                 base->snapshot_->fingerprint(), options));
  // Same ownership story as Shard(): the copy pins base's graph / arena /
  // snapshot for the backend's borrowed pointers.
  CloudWalker distributed(*base);
  distributed.walk_backend_ = std::move(backend);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(distributed)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Open(
    const std::string& path) {
  CW_ASSIGN_OR_RETURN(std::shared_ptr<const SnapshotView> view,
                      SnapshotView::Open(path));
  // Every flat array below aliases the mapping; the instance pins `view`
  // (and the view-backed Graph) for as long as any query can touch them.
  auto graph = std::make_shared<const Graph>(Graph::FromCsrViews(
      view->num_nodes(), view->out_offsets(), view->out_targets(),
      view->in_offsets(), view->in_targets()));
  auto context = std::make_shared<const WalkContext>(
      *graph,
      AliasArena::FromViews(view->arena_offsets(), view->arena_slots()));
  DiagonalIndex index =
      DiagonalIndex::FromView(view->params(), view->diagonal());

  const SnapshotMetadata& meta = view->metadata();
  CloudWalker opened(graph.get(), std::move(index),
                     StatsFromMetadata(meta),
                     OptionsFromMetadata(view->params(), meta),
                     std::move(context));
  opened.owned_graph_ = std::move(graph);
  if (!view->permutation().empty()) {
    // Locality-reordered artifact: queries run on internal ids behind an
    // external-id translation layer, and every walk re-keys its RNG on
    // the source's external id so answers match the unreordered artifact.
    opened.InstallPermutation(
        view->permutation(),
        std::make_shared<const LocalWalkBackend>(*opened.graph_,
                                                 opened.walk_context_.get()));
  }
  opened.snapshot_ = std::move(view);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(opened)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::OutOfCore(
    const std::string& path) {
  return OutOfCore(path, OutOfCoreOptions{});
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::OutOfCore(
    const std::string& path, const OutOfCoreOptions& ooc_options) {
  CW_ASSIGN_OR_RETURN(std::shared_ptr<const PagedSnapshot> paged,
                      PagedSnapshot::Open(path));
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const OutOfCoreWalkBackend> backend,
      OutOfCoreWalkBackend::Create(paged, ooc_options));
  // The facade graph exposes only the resident per-node arrays; the
  // in-targets span is deliberately empty. That is safe because every
  // walk routes through the out-of-core backend and the combine phases
  // read only the out-CSR and the diagonal — nothing on a query path
  // touches in-neighbors through this graph.
  auto graph = std::make_shared<const Graph>(Graph::FromCsrViews(
      paged->num_nodes(), paged->out_offsets(), paged->out_targets(),
      paged->in_offsets(), std::span<const NodeId>{}));
  // Degenerate arena for the same reason: the context is plumbing only.
  auto context = std::make_shared<const WalkContext>(
      *graph,
      AliasArena::FromParts(
          std::vector<uint64_t>(static_cast<size_t>(paged->num_nodes()) + 1,
                                0),
          {}));
  DiagonalIndex index =
      DiagonalIndex::FromView(paged->params(), paged->diagonal());

  const SnapshotMetadata& meta = paged->metadata();
  CloudWalker opened(graph.get(), std::move(index),
                     StatsFromMetadata(meta),
                     OptionsFromMetadata(paged->params(), meta),
                     std::move(context));
  opened.owned_graph_ = std::move(graph);
  opened.ooc_backend_ = backend;
  opened.walk_backend_ = backend;
  if (!paged->permutation().empty()) {
    opened.InstallPermutation(paged->permutation(), std::move(backend));
  }
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(opened)));
}

void CloudWalker::InstallPermutation(
    std::span<const NodeId> perm,
    std::shared_ptr<const WalkBackend> inner) {
  int_to_ext_ = perm;
  ext_to_int_.resize(perm.size());
  for (NodeId u = 0; u < perm.size(); ++u) ext_to_int_[perm[u]] = u;
  walk_backend_ =
      std::make_shared<const ExternalKeyWalkBackend>(std::move(inner),
                                                     int_to_ext_);
}

SparseVector CloudWalker::TranslateSparse(SparseVector raw) const {
  if (int_to_ext_.empty()) return raw;
  std::vector<SparseEntry> entries;
  entries.reserve(raw.size());
  for (const SparseEntry& e : raw) {
    entries.push_back(SparseEntry{int_to_ext_[e.index], e.value});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.index < b.index;
            });
  return SparseVector::FromSorted(std::move(entries));
}

SnapshotMetadata CloudWalker::BuildSnapshotMetadata() const {
  SnapshotMetadata meta;
  meta.num_walkers = indexing_options_.num_walkers;
  meta.jacobi_iterations = indexing_options_.jacobi_iterations;
  meta.seed = indexing_options_.seed;
  meta.row_mode = static_cast<uint32_t>(indexing_options_.row_mode);
  meta.dangling = static_cast<uint32_t>(indexing_options_.dangling);
  meta.initial_diagonal = indexing_options_.initial_diagonal;
  meta.query_options_fingerprint = QueryOptionsFingerprint(QueryOptions{});
  meta.walk_steps = stats_.walk_steps;
  meta.build_seconds = stats_.walk_seconds + stats_.solve_seconds;
  meta.builder = std::string(kCloudWalkerBuilderTag);
  return meta;
}

Status CloudWalker::WriteSnapshot(const std::string& path) const {
  if (ooc_backend_ != nullptr) {
    return Status::FailedPrecondition(
        "an out-of-core instance pages its per-edge arrays from disk and "
        "cannot rewrite a snapshot; copy the artifact file instead");
  }
  SnapshotWriteOptions write_options;
  if (snapshot_ != nullptr) {
    // Mirror the source artifact's format extensions so open-then-rewrite
    // stays byte-stable for old (no block index) and new formats alike.
    write_options.write_block_index = snapshot_->has_block_index();
    write_options.block_bytes = snapshot_->block_target_bytes();
    write_options.permutation = snapshot_->permutation();
  }
  return SnapshotWriter::Write(path, *graph_, walk_context_->arena(),
                               index_, BuildSnapshotMetadata(),
                               write_options);
}

Status CloudWalker::WriteReorderedSnapshot(const std::string& path,
                                           ReorderKind kind) const {
  if (kind == ReorderKind::kNone) return WriteSnapshot(path);
  if (ooc_backend_ != nullptr) {
    return Status::FailedPrecondition(
        "an out-of-core instance cannot reorder: the pass rewrites every "
        "per-edge array, which is exactly what it does not hold");
  }
  if (!int_to_ext_.empty()) {
    return Status::FailedPrecondition(
        "this instance already serves a locality-reordered snapshot; "
        "reordering again would compose permutations");
  }
  CW_ASSIGN_OR_RETURN(
      ReorderedArtifact artifact,
      ReorderForLocality(*graph_, index_.diagonal(), kind));
  const DiagonalIndex permuted =
      DiagonalIndex::FromView(index_.params(), artifact.diagonal);
  SnapshotWriteOptions write_options;
  write_options.permutation = artifact.perm;
  return SnapshotWriter::Write(path, artifact.graph, artifact.arena,
                               permuted, BuildSnapshotMetadata(),
                               write_options);
}

Status CloudWalker::TakeBackendError() const {
  return walk_backend_ != nullptr ? walk_backend_->TakeError()
                                  : Status::Ok();
}

Status CloudWalker::ValidateQuery(NodeId node,
                                  const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQueryOptions(options));
  if (node >= graph_->num_nodes()) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " out of range (graph has " +
                              std::to_string(graph_->num_nodes()) + " nodes)");
  }
  return Status::Ok();
}

StatusOr<double> CloudWalker::PairScore(NodeId i, NodeId j,
                                        const QueryOptions& options,
                                        QueryStats* stats,
                                        const CancelToken* cancel) const {
  const double raw = SinglePairQuery(*graph_, index_, ToInternal(i),
                                     ToInternal(j), options, stats,
                                     /*owner=*/nullptr, walk_context_.get(),
                                     cancel, walk_backend_.get());
  // Drain the backend error even when cancelled, so a stale failure never
  // leaks into the next query; cancellation takes reporting precedence.
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  return Clamp01(raw);
}

StatusOr<SparseVector> CloudWalker::SourceVector(
    NodeId q, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  SparseVector internal =
      SingleSourceQuery(*graph_, index_, ToInternal(q), options, stats,
                        /*owner=*/nullptr, walk_context_.get(), cancel,
                        walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  const SparseVector raw = TranslateSparse(std::move(internal));
  std::vector<SparseEntry> entries;
  entries.reserve(raw.size() + 1);
  bool saw_self = false;
  for (const SparseEntry& e : raw) {
    if (e.index == q) {
      entries.push_back(SparseEntry{q, 1.0});
      saw_self = true;
    } else {
      entries.push_back(SparseEntry{e.index, Clamp01(e.value)});
    }
  }
  SparseVector out = SparseVector::FromSorted(std::move(entries));
  if (!saw_self) {
    out = SparseVector::Axpy(out, 1.0,
                             SparseVector::FromSorted({SparseEntry{q, 1.0}}));
  }
  return out;
}

StatusOr<std::vector<ScoredNode>> CloudWalker::SourceTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  SparseVector internal =
      SingleSourceQuery(*graph_, index_, ToInternal(q), options, stats,
                        /*owner=*/nullptr, walk_context_.get(), cancel,
                        walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  const SparseVector raw = TranslateSparse(std::move(internal));
  std::vector<ScoredNode> top = TopKFromSparse(raw, /*exclude=*/q, k);
  for (ScoredNode& s : top) s.score = Clamp01(s.score);
  return top;
}

StatusOr<std::vector<std::vector<ScoredNode>>> CloudWalker::AllPairsInternal(
    size_t k, const QueryOptions& options, ThreadPool* pool,
    QueryStats* stats, const CancelToken* cancel) const {
  uint64_t walk_steps = 0;
  auto result = AllPairsTopK(*graph_, index_, options, k, pool, &walk_steps,
                             walk_context_.get(), cancel,
                             walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  if (stats != nullptr) stats->walk_steps += walk_steps;
  for (auto& per_source : result) {
    for (ScoredNode& s : per_source) s.score = Clamp01(s.score);
  }
  if (!int_to_ext_.empty()) {
    // Re-index sources and scored nodes into external id space, restoring
    // the (score desc, id asc) contract on the translated ids. Score ties
    // at the k boundary were decided on internal ids inside the kernel.
    std::vector<std::vector<ScoredNode>> external(result.size());
    for (size_t u = 0; u < result.size(); ++u) {
      std::vector<ScoredNode>& list = result[u];
      for (ScoredNode& s : list) s.node = int_to_ext_[s.node];
      std::sort(list.begin(), list.end(),
                [](const ScoredNode& a, const ScoredNode& b) {
                  return a.score != b.score ? a.score > b.score
                                            : a.node < b.node;
                });
      external[int_to_ext_[u]] = std::move(list);
    }
    result = std::move(external);
  }
  return result;
}

StatusOr<std::vector<ScoredNode>> CloudWalker::PprTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  SparseVector endpoints =
      PersonalizedPageRankQuery(*graph_, index_, ToInternal(q), options,
                                stats, /*owner=*/nullptr,
                                walk_context_.get(), cancel,
                                walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  // Endpoint frequencies are already in [0, 1]; no clamping needed.
  return TopKFromSparse(TranslateSparse(std::move(endpoints)),
                        /*exclude=*/q, k);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::N2vTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  SparseVector visits =
      Node2VecVisitQuery(*graph_, index_, ToInternal(q), options, stats,
                         /*owner=*/nullptr, walk_context_.get(), cancel,
                         walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  return TopKFromSparse(TranslateSparse(std::move(visits)),
                        /*exclude=*/q, k);
}

QueryResponse CloudWalker::Execute(const QueryRequest& request,
                                   ThreadPool* pool,
                                   const CancelToken* cancel) const {
  WallTimer timer;
  QueryResponse response;
  response.kind = request.kind;
  const QueryOptions base;  // the facade's defaults (paper parameters)
  const QueryOptions& options = request.EffectiveOptions(base);

  // A local token carries the request's own deadline when the caller did
  // not supply one (the serving layer arms its token at admission).
  CancelToken local;
  if (cancel == nullptr && request.timeout_seconds > 0.0) {
    local.SetDeadline(request.timeout_seconds);
    cancel = &local;
  }

  response.status = ValidateQueryRequest(request, graph_->num_nodes(), base);
  if (response.status.ok() && cancel != nullptr && cancel->ShouldStop()) {
    response.status = cancel->ToStatus();  // expired before any work
  }
  if (response.status.ok()) {
    switch (request.kind) {
      case QueryKind::kPair: {
        auto score = PairScore(request.a, request.b, options,
                               &response.stats, cancel);
        if (score.ok()) {
          response.payload = *score;
        } else {
          response.status = score.status();
        }
        break;
      }
      case QueryKind::kSingleSource: {
        auto scores =
            SourceVector(request.a, options, &response.stats, cancel);
        if (scores.ok()) {
          response.payload = std::make_shared<const SparseVector>(
              std::move(scores).value());
        } else {
          response.status = scores.status();
        }
        break;
      }
      case QueryKind::kSourceTopK: {
        auto top = SourceTopK(request.a, request.k, options, &response.stats,
                              cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
      case QueryKind::kAllPairsTopK: {
        auto all = AllPairsInternal(request.k, options, pool,
                                    &response.stats, cancel);
        if (all.ok()) {
          response.payload =
              std::make_shared<const AllPairsResult>(std::move(all).value());
        } else {
          response.status = all.status();
        }
        break;
      }
      case QueryKind::kPersonalizedPageRank: {
        auto top = PprTopK(request.a, request.k, options, &response.stats,
                           cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
      case QueryKind::kNode2Vec: {
        auto top = N2vTopK(request.a, request.k, options, &response.stats,
                           cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
    }
  }
  response.latency_seconds = timer.Seconds();
  return response;
}

StatusOr<double> CloudWalker::SinglePair(NodeId i, NodeId j,
                                         const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(i, options));
  CW_RETURN_IF_ERROR(ValidateQuery(j, options));
  return PairScore(i, j, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<SparseVector> CloudWalker::SingleSource(
    NodeId q, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return SourceVector(q, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::SingleSourceTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return SourceTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<std::vector<ScoredNode>>> CloudWalker::AllPairs(
    size_t k, const QueryOptions& options, ThreadPool* pool) const {
  CW_RETURN_IF_ERROR(ValidateQueryOptions(options));
  return AllPairsInternal(k, options, pool, /*stats=*/nullptr,
                          /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::PersonalizedPageRankTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return PprTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::Node2VecTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return N2vTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

}  // namespace cloudwalker
