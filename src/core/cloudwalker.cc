#include "core/cloudwalker.h"

#include <algorithm>

namespace cloudwalker {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

StatusOr<CloudWalker> CloudWalker::Build(const Graph* graph,
                                         const IndexingOptions& options,
                                         ThreadPool* pool) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  IndexingStats stats;
  CW_ASSIGN_OR_RETURN(DiagonalIndex index,
                      BuildDiagonalIndex(*graph, options, pool, &stats));
  return CloudWalker(graph, std::move(index), stats);
}

StatusOr<CloudWalker> CloudWalker::FromIndex(const Graph* graph,
                                             DiagonalIndex index) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (index.num_nodes() != graph->num_nodes()) {
    return Status::FailedPrecondition(
        "index covers " + std::to_string(index.num_nodes()) +
        " nodes but the graph has " + std::to_string(graph->num_nodes()));
  }
  return CloudWalker(graph, std::move(index), IndexingStats{});
}

Status CloudWalker::ValidateQuery(NodeId node,
                                  const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(options.Validate());
  if (node >= graph_->num_nodes()) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " out of range (graph has " +
                              std::to_string(graph_->num_nodes()) + " nodes)");
  }
  return Status::Ok();
}

StatusOr<double> CloudWalker::SinglePair(NodeId i, NodeId j,
                                         const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(i, options));
  CW_RETURN_IF_ERROR(ValidateQuery(j, options));
  return Clamp01(SinglePairQuery(*graph_, index_, i, j, options,
                                 /*stats=*/nullptr, /*owner=*/nullptr,
                                 walk_context_.get()));
}

StatusOr<SparseVector> CloudWalker::SingleSource(
    NodeId q, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  const SparseVector raw =
      SingleSourceQuery(*graph_, index_, q, options, /*stats=*/nullptr,
                        /*owner=*/nullptr, walk_context_.get());
  std::vector<SparseEntry> entries;
  entries.reserve(raw.size() + 1);
  bool saw_self = false;
  for (const SparseEntry& e : raw) {
    if (e.index == q) {
      entries.push_back(SparseEntry{q, 1.0});
      saw_self = true;
    } else {
      entries.push_back(SparseEntry{e.index, Clamp01(e.value)});
    }
  }
  SparseVector out = SparseVector::FromSorted(std::move(entries));
  if (!saw_self) {
    out = SparseVector::Axpy(out, 1.0,
                             SparseVector::FromSorted({SparseEntry{q, 1.0}}));
  }
  return out;
}

StatusOr<std::vector<ScoredNode>> CloudWalker::SingleSourceTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  const SparseVector raw =
      SingleSourceQuery(*graph_, index_, q, options, /*stats=*/nullptr,
                        /*owner=*/nullptr, walk_context_.get());
  std::vector<ScoredNode> top = TopKFromSparse(raw, /*exclude=*/q, k);
  for (ScoredNode& s : top) s.score = Clamp01(s.score);
  return top;
}

StatusOr<std::vector<std::vector<ScoredNode>>> CloudWalker::AllPairs(
    size_t k, const QueryOptions& options, ThreadPool* pool) const {
  CW_RETURN_IF_ERROR(options.Validate());
  auto result = AllPairsTopK(*graph_, index_, options, k, pool,
                             /*total_walk_steps=*/nullptr,
                             walk_context_.get());
  for (auto& per_source : result) {
    for (ScoredNode& s : per_source) s.score = Clamp01(s.score);
  }
  return result;
}

}  // namespace cloudwalker
