#include "core/cloudwalker.h"

#include <algorithm>

#include "common/timer.h"
#include "common/version.h"
#include "engine/parallel_walk.h"
#include "net/remote_backend.h"
#include "shard/sharded_engine.h"
#include "snapshot/snapshot.h"

namespace cloudwalker {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

StatusOr<CloudWalker> CloudWalker::Build(const Graph* graph,
                                         const IndexingOptions& options,
                                         ThreadPool* pool) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  IndexingStats stats;
  CW_ASSIGN_OR_RETURN(DiagonalIndex index,
                      BuildDiagonalIndex(*graph, options, pool, &stats));
  return CloudWalker(graph, std::move(index), stats, options);
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Build(
    Graph&& graph, const IndexingOptions& options, ThreadPool* pool) {
  auto owned = std::make_shared<const Graph>(std::move(graph));
  CW_ASSIGN_OR_RETURN(CloudWalker built, Build(owned.get(), options, pool));
  built.owned_graph_ = std::move(owned);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(built)));
}

StatusOr<CloudWalker> CloudWalker::FromIndex(const Graph* graph,
                                             DiagonalIndex index) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (index.num_nodes() != graph->num_nodes()) {
    return Status::FailedPrecondition(
        "index covers " + std::to_string(index.num_nodes()) +
        " nodes but the graph has " + std::to_string(graph->num_nodes()));
  }
  IndexingOptions options;
  options.params = index.params();
  return CloudWalker(graph, std::move(index), IndexingStats{}, options);
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::FromIndex(
    Graph&& graph, DiagonalIndex index) {
  auto owned = std::make_shared<const Graph>(std::move(graph));
  CW_ASSIGN_OR_RETURN(CloudWalker built,
                      FromIndex(owned.get(), std::move(index)));
  built.owned_graph_ = std::move(owned);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(built)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Shard(
    const std::shared_ptr<const CloudWalker>& base,
    const ShardingOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const ShardedWalkEngine> engine,
      ShardedWalkEngine::Build(base->graph(), base->walk_context_.get(),
                               options));
  // The copy shares the graph / arena / snapshot ownership with `base`, so
  // the borrowed pointers inside the engine stay pinned even after the
  // caller drops `base`. (A borrowed-graph base keeps its original
  // contract: the external graph must outlive the sharded instance too.)
  CloudWalker sharded(*base);
  sharded.walk_backend_ = std::move(engine);
  return std::shared_ptr<const CloudWalker>(new CloudWalker(std::move(sharded)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Parallelize(
    const std::shared_ptr<const CloudWalker>& base,
    const ParallelWalkOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const ParallelWalkExecutor> executor,
      ParallelWalkExecutor::Build(base->graph(), base->walk_context_.get(),
                                  options));
  // Same ownership story as Shard(): the copy pins base's graph / arena /
  // snapshot for the executor's borrowed pointers.
  CloudWalker parallel(*base);
  parallel.walk_backend_ = std::move(executor);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(parallel)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Distribute(
    const std::shared_ptr<const CloudWalker>& base,
    const RemoteBackendOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("base engine must not be null");
  }
  if (base->snapshot_ == nullptr) {
    return Status::FailedPrecondition(
        "Distribute requires a snapshot-backed engine (CloudWalker::Open): "
        "the handshake pins the snapshot fingerprint so coordinator and "
        "workers provably serve the same artifact");
  }
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const RemoteWalkBackend> backend,
      RemoteWalkBackend::Connect(base->graph(),
                                 base->snapshot_->fingerprint(), options));
  // Same ownership story as Shard(): the copy pins base's graph / arena /
  // snapshot for the backend's borrowed pointers.
  CloudWalker distributed(*base);
  distributed.walk_backend_ = std::move(backend);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(distributed)));
}

StatusOr<std::shared_ptr<const CloudWalker>> CloudWalker::Open(
    const std::string& path) {
  CW_ASSIGN_OR_RETURN(std::shared_ptr<const SnapshotView> view,
                      SnapshotView::Open(path));
  // Every flat array below aliases the mapping; the instance pins `view`
  // (and the view-backed Graph) for as long as any query can touch them.
  auto graph = std::make_shared<const Graph>(Graph::FromCsrViews(
      view->num_nodes(), view->out_offsets(), view->out_targets(),
      view->in_offsets(), view->in_targets()));
  auto context = std::make_shared<const WalkContext>(
      *graph,
      AliasArena::FromViews(view->arena_offsets(), view->arena_slots()));
  DiagonalIndex index =
      DiagonalIndex::FromView(view->params(), view->diagonal());

  const SnapshotMetadata& meta = view->metadata();
  IndexingOptions options;
  options.params = view->params();
  options.num_walkers = meta.num_walkers;
  options.jacobi_iterations = meta.jacobi_iterations;
  options.seed = meta.seed;
  options.row_mode = static_cast<RowMode>(meta.row_mode);
  options.dangling = static_cast<DanglingPolicy>(meta.dangling);
  options.initial_diagonal = meta.initial_diagonal;
  IndexingStats stats;
  stats.walk_steps = meta.walk_steps;
  stats.walk_seconds = meta.build_seconds;

  CloudWalker opened(graph.get(), std::move(index), std::move(stats),
                     options, std::move(context));
  opened.owned_graph_ = std::move(graph);
  opened.snapshot_ = std::move(view);
  return std::shared_ptr<const CloudWalker>(
      new CloudWalker(std::move(opened)));
}

Status CloudWalker::WriteSnapshot(const std::string& path) const {
  SnapshotMetadata meta;
  meta.num_walkers = indexing_options_.num_walkers;
  meta.jacobi_iterations = indexing_options_.jacobi_iterations;
  meta.seed = indexing_options_.seed;
  meta.row_mode = static_cast<uint32_t>(indexing_options_.row_mode);
  meta.dangling = static_cast<uint32_t>(indexing_options_.dangling);
  meta.initial_diagonal = indexing_options_.initial_diagonal;
  meta.query_options_fingerprint = QueryOptionsFingerprint(QueryOptions{});
  meta.walk_steps = stats_.walk_steps;
  meta.build_seconds = stats_.walk_seconds + stats_.solve_seconds;
  meta.builder = std::string(kCloudWalkerBuilderTag);
  return SnapshotWriter::Write(path, *graph_, walk_context_->arena(),
                               index_, meta);
}

Status CloudWalker::TakeBackendError() const {
  return walk_backend_ != nullptr ? walk_backend_->TakeError()
                                  : Status::Ok();
}

Status CloudWalker::ValidateQuery(NodeId node,
                                  const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQueryOptions(options));
  if (node >= graph_->num_nodes()) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " out of range (graph has " +
                              std::to_string(graph_->num_nodes()) + " nodes)");
  }
  return Status::Ok();
}

StatusOr<double> CloudWalker::PairScore(NodeId i, NodeId j,
                                        const QueryOptions& options,
                                        QueryStats* stats,
                                        const CancelToken* cancel) const {
  const double raw = SinglePairQuery(*graph_, index_, i, j, options, stats,
                                     /*owner=*/nullptr, walk_context_.get(),
                                     cancel, walk_backend_.get());
  // Drain the backend error even when cancelled, so a stale failure never
  // leaks into the next query; cancellation takes reporting precedence.
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  return Clamp01(raw);
}

StatusOr<SparseVector> CloudWalker::SourceVector(
    NodeId q, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  const SparseVector raw =
      SingleSourceQuery(*graph_, index_, q, options, stats,
                        /*owner=*/nullptr, walk_context_.get(), cancel,
                        walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  std::vector<SparseEntry> entries;
  entries.reserve(raw.size() + 1);
  bool saw_self = false;
  for (const SparseEntry& e : raw) {
    if (e.index == q) {
      entries.push_back(SparseEntry{q, 1.0});
      saw_self = true;
    } else {
      entries.push_back(SparseEntry{e.index, Clamp01(e.value)});
    }
  }
  SparseVector out = SparseVector::FromSorted(std::move(entries));
  if (!saw_self) {
    out = SparseVector::Axpy(out, 1.0,
                             SparseVector::FromSorted({SparseEntry{q, 1.0}}));
  }
  return out;
}

StatusOr<std::vector<ScoredNode>> CloudWalker::SourceTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  const SparseVector raw =
      SingleSourceQuery(*graph_, index_, q, options, stats,
                        /*owner=*/nullptr, walk_context_.get(), cancel,
                        walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  std::vector<ScoredNode> top = TopKFromSparse(raw, /*exclude=*/q, k);
  for (ScoredNode& s : top) s.score = Clamp01(s.score);
  return top;
}

StatusOr<std::vector<std::vector<ScoredNode>>> CloudWalker::AllPairsInternal(
    size_t k, const QueryOptions& options, ThreadPool* pool,
    QueryStats* stats, const CancelToken* cancel) const {
  uint64_t walk_steps = 0;
  auto result = AllPairsTopK(*graph_, index_, options, k, pool, &walk_steps,
                             walk_context_.get(), cancel,
                             walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  if (stats != nullptr) stats->walk_steps += walk_steps;
  for (auto& per_source : result) {
    for (ScoredNode& s : per_source) s.score = Clamp01(s.score);
  }
  return result;
}

StatusOr<std::vector<ScoredNode>> CloudWalker::PprTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  const SparseVector endpoints =
      PersonalizedPageRankQuery(*graph_, index_, q, options, stats,
                                /*owner=*/nullptr, walk_context_.get(),
                                cancel, walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  // Endpoint frequencies are already in [0, 1]; no clamping needed.
  return TopKFromSparse(endpoints, /*exclude=*/q, k);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::N2vTopK(
    NodeId q, size_t k, const QueryOptions& options, QueryStats* stats,
    const CancelToken* cancel) const {
  const SparseVector visits =
      Node2VecVisitQuery(*graph_, index_, q, options, stats,
                         /*owner=*/nullptr, walk_context_.get(), cancel,
                         walk_backend_.get());
  const Status backend = TakeBackendError();
  if (cancel != nullptr && cancel->ShouldStop()) return cancel->ToStatus();
  if (!backend.ok()) return backend;
  return TopKFromSparse(visits, /*exclude=*/q, k);
}

QueryResponse CloudWalker::Execute(const QueryRequest& request,
                                   ThreadPool* pool,
                                   const CancelToken* cancel) const {
  WallTimer timer;
  QueryResponse response;
  response.kind = request.kind;
  const QueryOptions base;  // the facade's defaults (paper parameters)
  const QueryOptions& options = request.EffectiveOptions(base);

  // A local token carries the request's own deadline when the caller did
  // not supply one (the serving layer arms its token at admission).
  CancelToken local;
  if (cancel == nullptr && request.timeout_seconds > 0.0) {
    local.SetDeadline(request.timeout_seconds);
    cancel = &local;
  }

  response.status = ValidateQueryRequest(request, graph_->num_nodes(), base);
  if (response.status.ok() && cancel != nullptr && cancel->ShouldStop()) {
    response.status = cancel->ToStatus();  // expired before any work
  }
  if (response.status.ok()) {
    switch (request.kind) {
      case QueryKind::kPair: {
        auto score = PairScore(request.a, request.b, options,
                               &response.stats, cancel);
        if (score.ok()) {
          response.payload = *score;
        } else {
          response.status = score.status();
        }
        break;
      }
      case QueryKind::kSingleSource: {
        auto scores =
            SourceVector(request.a, options, &response.stats, cancel);
        if (scores.ok()) {
          response.payload = std::make_shared<const SparseVector>(
              std::move(scores).value());
        } else {
          response.status = scores.status();
        }
        break;
      }
      case QueryKind::kSourceTopK: {
        auto top = SourceTopK(request.a, request.k, options, &response.stats,
                              cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
      case QueryKind::kAllPairsTopK: {
        auto all = AllPairsInternal(request.k, options, pool,
                                    &response.stats, cancel);
        if (all.ok()) {
          response.payload =
              std::make_shared<const AllPairsResult>(std::move(all).value());
        } else {
          response.status = all.status();
        }
        break;
      }
      case QueryKind::kPersonalizedPageRank: {
        auto top = PprTopK(request.a, request.k, options, &response.stats,
                           cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
      case QueryKind::kNode2Vec: {
        auto top = N2vTopK(request.a, request.k, options, &response.stats,
                           cancel);
        if (top.ok()) {
          response.payload =
              std::make_shared<const TopKResult>(std::move(top).value());
        } else {
          response.status = top.status();
        }
        break;
      }
    }
  }
  response.latency_seconds = timer.Seconds();
  return response;
}

StatusOr<double> CloudWalker::SinglePair(NodeId i, NodeId j,
                                         const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(i, options));
  CW_RETURN_IF_ERROR(ValidateQuery(j, options));
  return PairScore(i, j, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<SparseVector> CloudWalker::SingleSource(
    NodeId q, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return SourceVector(q, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::SingleSourceTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return SourceTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<std::vector<ScoredNode>>> CloudWalker::AllPairs(
    size_t k, const QueryOptions& options, ThreadPool* pool) const {
  CW_RETURN_IF_ERROR(ValidateQueryOptions(options));
  return AllPairsInternal(k, options, pool, /*stats=*/nullptr,
                          /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::PersonalizedPageRankTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return PprTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

StatusOr<std::vector<ScoredNode>> CloudWalker::Node2VecTopK(
    NodeId q, size_t k, const QueryOptions& options) const {
  CW_RETURN_IF_ERROR(ValidateQuery(q, options));
  return N2vTopK(q, k, options, /*stats=*/nullptr, /*cancel=*/nullptr);
}

}  // namespace cloudwalker
