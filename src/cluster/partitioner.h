// Node -> worker assignment for the simulated cluster.

#ifndef CLOUDWALKER_CLUSTER_PARTITIONER_H_
#define CLOUDWALKER_CLUSTER_PARTITIONER_H_

#include <cstdint>

#include "graph/graph.h"

namespace cloudwalker {

/// Partitioning strategies.
enum class PartitionStrategy {
  /// worker = hash(node) % W — the RDD model's hash partitioner; spreads
  /// hubs and contiguous id ranges evenly.
  kHash = 0,
  /// worker = node / ceil(n / W) — contiguous ranges; cheap ownership test,
  /// used for work partitioning in the Broadcasting model.
  kRange = 1,
};

/// Maps node ids in [0, num_nodes) onto workers [0, num_workers).
class Partitioner {
 public:
  /// Creates a partitioner; num_workers must be >= 1.
  Partitioner(PartitionStrategy strategy, NodeId num_nodes, int num_workers);

  /// The worker owning `node`.
  int Owner(NodeId node) const {
    if (strategy_ == PartitionStrategy::kHash) {
      // Fibonacci hash then reduce; avoids modulo bias on sequential ids.
      const uint64_t h = static_cast<uint64_t>(node) * 0x9e3779b97f4a7c15ULL;
      return static_cast<int>((h >> 32) * num_workers_ >> 32);
    }
    return static_cast<int>(node / range_width_);
  }

  int num_workers() const { return static_cast<int>(num_workers_); }
  PartitionStrategy strategy() const { return strategy_; }

  /// For kRange: the [begin, end) node range owned by `worker`.
  /// For kHash: CW_CHECK-fails (ranges are not contiguous).
  void OwnedRange(int worker, NodeId* begin, NodeId* end) const;

 private:
  PartitionStrategy strategy_;
  NodeId num_nodes_;
  uint64_t num_workers_;
  NodeId range_width_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CLUSTER_PARTITIONER_H_
