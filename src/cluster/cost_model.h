// Cost model translating counted work units into simulated cluster time.
//
// The paper evaluates on a 10-node Spark cluster (16 cores, 377 GB each).
// That hardware is unavailable here, so computations execute for real on the
// local thread pool while every kernel *counts* its work (walk steps, edge
// traversals, floating-point ops). The cost model maps those counts plus the
// communication pattern (stages, broadcasts, shuffles) onto simulated
// wall-clock time for a configurable cluster. Relative behaviour — dataset
// ordering, Broadcasting-vs-RDD ratios, scalability curves — is preserved
// because it is driven by the same counts that drove the paper's runtimes.

#ifndef CLOUDWALKER_CLUSTER_COST_MODEL_H_
#define CLOUDWALKER_CLUSTER_COST_MODEL_H_

#include <cstdint>

namespace cloudwalker {

/// Rates and overheads of the simulated cluster.
struct CostModel {
  /// Seconds per random-walk step on one core (memory-latency bound).
  double seconds_per_walk_step = 2e-8;
  /// Seconds per adjacency-edge traversal on one core (streaming bound).
  double seconds_per_edge_op = 4e-9;
  /// Seconds per scalar floating-point op on one core.
  double seconds_per_flop = 2e-9;
  /// Fixed scheduler cost of launching one distributed stage (Spark-like).
  double stage_overhead_seconds = 0.25;
  /// Per-task launch cost within a stage.
  double task_overhead_seconds = 0.005;
  /// One-way network latency per message round.
  double network_latency_seconds = 1e-3;
  /// Aggregate network bandwidth available to a broadcast or shuffle.
  double network_bandwidth_bytes_per_sec = 1.0e9;

  /// The documented defaults above.
  static CostModel Default() { return CostModel{}; }
};

/// Per-worker work counters filled in by kernels during a stage.
class WorkMeter {
 public:
  /// Adds `n` random-walk steps.
  void AddWalkSteps(uint64_t n) { walk_steps_ += n; }
  /// Adds `n` adjacency-edge traversals.
  void AddEdgeOps(uint64_t n) { edge_ops_ += n; }
  /// Adds `n` scalar floating-point operations.
  void AddFlops(uint64_t n) { flops_ += n; }

  uint64_t walk_steps() const { return walk_steps_; }
  uint64_t edge_ops() const { return edge_ops_; }
  uint64_t flops() const { return flops_; }

  /// Single-core seconds this meter's work would take under `model`.
  double SingleCoreSeconds(const CostModel& model) const {
    return static_cast<double>(walk_steps_) * model.seconds_per_walk_step +
           static_cast<double>(edge_ops_) * model.seconds_per_edge_op +
           static_cast<double>(flops_) * model.seconds_per_flop;
  }

 private:
  uint64_t walk_steps_ = 0;
  uint64_t edge_ops_ = 0;
  uint64_t flops_ = 0;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CLUSTER_COST_MODEL_H_
