#include "cluster/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace cloudwalker {

Partitioner::Partitioner(PartitionStrategy strategy, NodeId num_nodes,
                         int num_workers)
    : strategy_(strategy),
      num_nodes_(num_nodes),
      num_workers_(static_cast<uint64_t>(std::max(1, num_workers))) {
  range_width_ = static_cast<NodeId>(
      (static_cast<uint64_t>(num_nodes_) + num_workers_ - 1) /
      std::max<uint64_t>(1, num_workers_));
  if (range_width_ == 0) range_width_ = 1;
}

void Partitioner::OwnedRange(int worker, NodeId* begin, NodeId* end) const {
  CW_CHECK(strategy_ == PartitionStrategy::kRange)
      << "OwnedRange requires a range partitioner";
  CW_CHECK_GE(worker, 0);
  CW_CHECK_LT(static_cast<uint64_t>(worker), num_workers_);
  const uint64_t b = static_cast<uint64_t>(worker) * range_width_;
  const uint64_t e = b + range_width_;
  *begin = static_cast<NodeId>(std::min<uint64_t>(b, num_nodes_));
  *end = static_cast<NodeId>(std::min<uint64_t>(e, num_nodes_));
}

}  // namespace cloudwalker
