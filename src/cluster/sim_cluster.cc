#include "cluster/sim_cluster.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"

namespace cloudwalker {

SimCluster::SimCluster(const ClusterConfig& config,
                       const CostModel& cost_model, ThreadPool* pool)
    : config_(config), cost_model_(cost_model), pool_(pool) {
  CW_CHECK_GE(config_.num_workers, 1);
  CW_CHECK_GE(config_.cores_per_worker, 1);
}

void SimCluster::RunStage(
    std::string_view name,
    const std::function<void(int worker, WorkMeter& meter)>& body,
    int tasks_per_worker) {
  const int w = config_.num_workers;
  std::vector<WorkMeter> meters(w);
  ParallelFor(pool_, 0, static_cast<uint64_t>(w), /*grain=*/1,
              [&body, &meters](uint64_t begin, uint64_t end) {
                for (uint64_t i = begin; i < end; ++i) {
                  body(static_cast<int>(i), meters[i]);
                }
              });

  double critical_path = 0.0;
  for (const WorkMeter& m : meters) {
    critical_path = std::max(
        critical_path, m.SingleCoreSeconds(cost_model_) /
                           static_cast<double>(config_.cores_per_worker));
  }
  // Tasks launch in waves across a worker's cores.
  const int waves = (std::max(1, tasks_per_worker) +
                     config_.cores_per_worker - 1) /
                    config_.cores_per_worker;
  const double overhead =
      cost_model_.stage_overhead_seconds +
      cost_model_.task_overhead_seconds * static_cast<double>(waves);
  report_.compute_seconds += critical_path;
  report_.overhead_seconds += overhead;
  ++report_.num_stages;
  report_.stages.push_back(
      StageRecord{std::string(name), critical_path, overhead});
}

void SimCluster::RunDriver(const std::function<void(WorkMeter& meter)>& body) {
  WorkMeter meter;
  body(meter);
  report_.compute_seconds +=
      meter.SingleCoreSeconds(cost_model_) /
      static_cast<double>(config_.cores_per_worker);
}

void SimCluster::Broadcast(uint64_t bytes) {
  // Tree/torrent broadcast: latency grows with log2(W), volume is pipelined
  // so the wire time is ~one copy of the payload.
  const double hops =
      std::ceil(std::log2(static_cast<double>(config_.num_workers) + 1));
  report_.network_seconds +=
      cost_model_.network_latency_seconds * hops +
      static_cast<double>(bytes) /
          cost_model_.network_bandwidth_bytes_per_sec;
  report_.bytes_broadcast += bytes * static_cast<uint64_t>(config_.num_workers);
}

void SimCluster::Shuffle(uint64_t total_bytes) {
  report_.network_seconds +=
      cost_model_.network_latency_seconds +
      static_cast<double>(total_bytes) /
          cost_model_.network_bandwidth_bytes_per_sec;
  report_.bytes_shuffled += total_bytes;
}

void SimCluster::RecordWorkerMemory(uint64_t bytes_per_worker) {
  report_.peak_worker_memory_bytes =
      std::max(report_.peak_worker_memory_bytes, bytes_per_worker);
}

bool SimCluster::CheckWorkerMemory(uint64_t bytes_per_worker,
                                   std::string_view what) {
  report_.peak_worker_memory_bytes =
      std::max(report_.peak_worker_memory_bytes, bytes_per_worker);
  if (bytes_per_worker > config_.worker_memory_bytes) {
    report_.feasible = false;
    if (report_.infeasible_reason.empty()) {
      report_.infeasible_reason =
          std::string(what) + " needs " + std::to_string(bytes_per_worker) +
          " bytes/worker, capacity is " +
          std::to_string(config_.worker_memory_bytes);
    }
    return false;
  }
  return true;
}

}  // namespace cloudwalker
