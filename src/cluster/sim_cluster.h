// Simulated Spark-like cluster.
//
// A SimCluster executes stages for real on a local ThreadPool (one logical
// task per simulated worker) while advancing a simulated clock according to
// the CostModel:
//
//   stage time = stage_overhead
//              + max over workers of (work / cores_per_worker + task cost)
//
// Broadcast() and Shuffle() advance the clock by modeled network time and
// record traffic volumes. CheckWorkerMemory() records infeasibility when a
// dataflow needs more per-worker memory than the configured capacity — this
// is what makes the Broadcasting model "N/A" on graphs that do not fit on
// one worker, reproducing the paper's Table entries.

#ifndef CLOUDWALKER_CLUSTER_SIM_CLUSTER_H_
#define CLOUDWALKER_CLUSTER_SIM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cost_model.h"
#include "common/threading.h"

namespace cloudwalker {

/// Shape of the simulated cluster (defaults mirror the paper's testbed,
/// with memory scaled to the scaled-down datasets: 377 GB : 401 GB
/// graph ≈ 128 MiB : our largest stand-in).
struct ClusterConfig {
  /// Number of worker machines.
  int num_workers = 10;
  /// Cores per worker machine.
  int cores_per_worker = 16;
  /// Per-worker memory capacity in bytes.
  uint64_t worker_memory_bytes = 128ull << 20;
};

/// Per-stage breakdown entry (in execution order).
struct StageRecord {
  std::string name;
  double compute_seconds = 0.0;   // critical-path compute of this stage
  double overhead_seconds = 0.0;  // scheduling cost of this stage
};

/// Accumulated simulated-execution metrics.
struct SimCostReport {
  double compute_seconds = 0.0;   // stage compute on the critical path
  double overhead_seconds = 0.0;  // stage + task launch overheads
  double network_seconds = 0.0;   // broadcast + shuffle time
  uint64_t bytes_broadcast = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t num_stages = 0;
  uint64_t peak_worker_memory_bytes = 0;
  bool feasible = true;
  std::string infeasible_reason;
  /// One record per RunStage call, in order.
  std::vector<StageRecord> stages;

  /// Simulated elapsed wall-clock seconds.
  double TotalSeconds() const {
    return compute_seconds + overhead_seconds + network_seconds;
  }
};

/// One simulated cluster run. Create, execute stages, read report().
/// Not thread-safe; drive it from a single thread (stage bodies themselves
/// run concurrently across simulated workers).
class SimCluster {
 public:
  /// `pool` may be null (stages then execute serially); it must outlive the
  /// cluster.
  SimCluster(const ClusterConfig& config, const CostModel& cost_model,
             ThreadPool* pool);

  const ClusterConfig& config() const { return config_; }
  const CostModel& cost_model() const { return cost_model_; }
  int num_workers() const { return config_.num_workers; }

  /// Runs `body(worker, meter)` once per worker (concurrently when a pool is
  /// available) and advances the simulated clock. `tasks_per_worker` models
  /// how many scheduler tasks the stage fans out per worker.
  void RunStage(std::string_view name,
                const std::function<void(int worker, WorkMeter& meter)>& body,
                int tasks_per_worker = 1);

  /// Runs driver-local work: no stage overhead, parallelized across the
  /// driver's cores (== cores_per_worker). This is the Broadcasting model's
  /// query path.
  void RunDriver(const std::function<void(WorkMeter& meter)>& body);

  /// Accounts a driver -> all-workers broadcast of `bytes` per worker.
  void Broadcast(uint64_t bytes);

  /// Accounts an all-to-all shuffle moving `total_bytes` across the network.
  void Shuffle(uint64_t total_bytes);

  /// Records that each worker must hold `bytes_per_worker` for `what`;
  /// marks the run infeasible when capacity is exceeded. Returns true when
  /// it fits.
  bool CheckWorkerMemory(uint64_t bytes_per_worker, std::string_view what);

  /// Records spillable per-worker memory (e.g. materialized rows a Spark
  /// executor could spill to disk or regenerate): tracked in
  /// peak_worker_memory_bytes but never gates feasibility.
  void RecordWorkerMemory(uint64_t bytes_per_worker);

  /// Metrics accumulated so far.
  const SimCostReport& report() const { return report_; }

 private:
  ClusterConfig config_;
  CostModel cost_model_;
  ThreadPool* pool_;
  SimCostReport report_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_CLUSTER_SIM_CLUSTER_H_
