#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace cloudwalker {

bool Graph::HasEdge(NodeId from, NodeId to) const {
  if (from >= num_nodes_ || to >= num_nodes_) return false;
  const auto nbrs = OutNeighbors(from);
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

uint64_t Graph::MemoryBytes() const {
  return out_offsets_v_.size() * sizeof(uint64_t) +
         in_offsets_v_.size() * sizeof(uint64_t) +
         out_targets_v_.size() * sizeof(NodeId) +
         in_targets_v_.size() * sizeof(NodeId);
}

void Graph::AdoptOwnedStorage() {
  out_offsets_v_ = out_offsets_;
  out_targets_v_ = out_targets_;
  in_offsets_v_ = in_offsets_;
  in_targets_v_ = in_targets_;
}

void Graph::CopyFrom(const Graph& other) {
  num_nodes_ = other.num_nodes_;
  out_offsets_.assign(other.out_offsets_v_.begin(),
                      other.out_offsets_v_.end());
  out_targets_.assign(other.out_targets_v_.begin(),
                      other.out_targets_v_.end());
  in_offsets_.assign(other.in_offsets_v_.begin(), other.in_offsets_v_.end());
  in_targets_.assign(other.in_targets_v_.begin(), other.in_targets_v_.end());
  AdoptOwnedStorage();
}

Graph Graph::FromCsrViews(NodeId num_nodes,
                          std::span<const uint64_t> out_offsets,
                          std::span<const NodeId> out_targets,
                          std::span<const uint64_t> in_offsets,
                          std::span<const NodeId> in_targets) {
  Graph g;
  g.num_nodes_ = num_nodes;
  CW_CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CW_CHECK_EQ(in_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  g.out_offsets_v_ = out_offsets;
  g.out_targets_v_ = out_targets;
  g.in_offsets_v_ = in_offsets;
  g.in_targets_v_ = in_targets;
  return g;
}

Graph Graph::Reversed() const {
  Graph g;
  g.num_nodes_ = num_nodes_;
  g.out_offsets_.assign(in_offsets_v_.begin(), in_offsets_v_.end());
  g.out_targets_.assign(in_targets_v_.begin(), in_targets_v_.end());
  g.in_offsets_.assign(out_offsets_v_.begin(), out_offsets_v_.end());
  g.in_targets_.assign(out_targets_v_.begin(), out_targets_v_.end());
  g.AdoptOwnedStorage();
  return g;
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

StatusOr<Graph> GraphBuilder::Build(const GraphBuildOptions& options) {
  for (const Edge& e : edges_) {
    if (e.from >= num_nodes_ || e.to >= num_nodes_) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.from) + " -> " + std::to_string(e.to) +
          ") out of range for " + std::to_string(num_nodes_) + " nodes");
    }
  }
  if (options.remove_self_loops) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge& e) { return e.from == e.to; }),
                 edges_.end());
  }

  Graph g;
  g.num_nodes_ = num_nodes_;
  const size_t n = num_nodes_;

  // Out-CSR: counting scatter, then per-node sort (+ unique when deduping).
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++g.out_offsets_[e.from + 1];
  for (size_t v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_targets_.resize(edges_.size());
  {
    std::vector<uint64_t> cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) g.out_targets_[cursor[e.from]++] = e.to;
  }
  if (options.dedup) {
    uint64_t write = 0;
    std::vector<uint64_t> new_offsets(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      auto* begin = g.out_targets_.data() + g.out_offsets_[v];
      auto* end = g.out_targets_.data() + g.out_offsets_[v + 1];
      std::sort(begin, end);
      auto* last = std::unique(begin, end);
      for (auto* p = begin; p != last; ++p) g.out_targets_[write++] = *p;
      new_offsets[v + 1] = write;
    }
    g.out_targets_.resize(write);
    g.out_offsets_ = std::move(new_offsets);
  } else {
    for (size_t v = 0; v < n; ++v) {
      std::sort(g.out_targets_.begin() + g.out_offsets_[v],
                g.out_targets_.begin() + g.out_offsets_[v + 1]);
    }
  }

  // In-CSR is derived from the (already clean) out-CSR.
  g.in_offsets_.assign(n + 1, 0);
  for (NodeId t : g.out_targets_) ++g.in_offsets_[t + 1];
  for (size_t v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_targets_.resize(g.out_targets_.size());
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (size_t v = 0; v < n; ++v) {
      for (uint64_t i = g.out_offsets_[v]; i < g.out_offsets_[v + 1]; ++i) {
        g.in_targets_[cursor[g.out_targets_[i]]++] = static_cast<NodeId>(v);
      }
    }
  }
  // The scatter above visits sources in increasing order, so each in-list is
  // already sorted.

  edges_.clear();
  edges_.shrink_to_fit();
  g.AdoptOwnedStorage();
  return g;
}

}  // namespace cloudwalker
