#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace cloudwalker {
namespace {

Graph MustBuild(GraphBuilder& builder, const GraphBuildOptions& options = {}) {
  auto built = builder.Build(options);
  CW_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

}  // namespace

Graph GenerateErdosRenyi(NodeId num_nodes, uint64_t num_edges,
                         uint64_t seed) {
  CW_CHECK_GT(num_nodes, 0u);
  Xoshiro256 rng(DeriveSeed(seed, 0x4552u));  // "ER"
  GraphBuilder builder(num_nodes);
  builder.Reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const NodeId from = rng.UniformInt32(num_nodes);
    const NodeId to = rng.UniformInt32(num_nodes);
    builder.AddEdge(from, to);
  }
  return MustBuild(builder);
}

Graph GenerateRmat(NodeId num_nodes, uint64_t num_edges, uint64_t seed,
                   const RmatOptions& options, ThreadPool* pool) {
  CW_CHECK_GT(num_nodes, 0u);
  const double total = options.a + options.b + options.c + options.d;
  CW_CHECK_GT(total, 0.0);
  int levels = 0;
  while ((NodeId{1} << levels) < num_nodes) ++levels;

  // Edges are sampled in fixed-size chunks, each with its own derived RNG
  // stream, so the output is identical for any thread count.
  constexpr uint64_t kChunk = 1 << 16;
  const uint64_t num_chunks = (num_edges + kChunk - 1) / kChunk;
  std::vector<std::pair<NodeId, NodeId>> edges(num_edges);
  ParallelFor(pool, 0, num_chunks, /*grain=*/1, [&](uint64_t cb,
                                                    uint64_t ce) {
    for (uint64_t chunk = cb; chunk < ce; ++chunk) {
      Xoshiro256 rng =
          Xoshiro256::Derive(DeriveSeed(seed, 0x524d4154u), chunk);  // "RMAT"
      const uint64_t begin = chunk * kChunk;
      const uint64_t end = std::min(begin + kChunk, num_edges);
      for (uint64_t e = begin; e < end; ++e) {
        NodeId row = 0, col = 0;
        for (int lvl = 0; lvl < levels; ++lvl) {
          double a = options.a, b = options.b, c = options.c, d = options.d;
          if (options.noise) {
            // +/-10% multiplicative noise per level, renormalized below.
            a *= 0.9 + 0.2 * rng.NextDouble();
            b *= 0.9 + 0.2 * rng.NextDouble();
            c *= 0.9 + 0.2 * rng.NextDouble();
            d *= 0.9 + 0.2 * rng.NextDouble();
          }
          const double norm = a + b + c + d;
          const double r = rng.NextDouble() * norm;
          row <<= 1;
          col <<= 1;
          if (r < a) {
            // top-left quadrant
          } else if (r < a + b) {
            col |= 1;
          } else if (r < a + b + c) {
            row |= 1;
          } else {
            row |= 1;
            col |= 1;
          }
        }
        // Fold the 2^levels grid down onto [0, num_nodes).
        edges[e] = {row % num_nodes, col % num_nodes};
      }
    }
  });

  GraphBuilder builder(num_nodes);
  builder.Reserve(num_edges);
  for (const auto& [f, t] : edges) builder.AddEdge(f, t);
  return MustBuild(builder);
}

Graph GenerateBarabasiAlbert(NodeId num_nodes, uint32_t attach,
                             uint64_t seed) {
  CW_CHECK_GT(num_nodes, 0u);
  CW_CHECK_GT(attach, 0u);
  Xoshiro256 rng(DeriveSeed(seed, 0x4241u));  // "BA"
  GraphBuilder builder(num_nodes);
  builder.Reserve(static_cast<size_t>(num_nodes) * attach);
  // Repeated-endpoint list: each edge target appended once per incidence,
  // so uniform sampling from it is preferential attachment (in-degree + 1
  // via also appending each node once on arrival).
  std::vector<NodeId> urn;
  urn.reserve(static_cast<size_t>(num_nodes) * (attach + 1));
  urn.push_back(0);
  for (NodeId v = 1; v < num_nodes; ++v) {
    const uint32_t k = std::min<uint32_t>(attach, v);
    for (uint32_t j = 0; j < k; ++j) {
      const NodeId target = urn[rng.UniformInt(urn.size())];
      builder.AddEdge(v, target);
      urn.push_back(target);
    }
    urn.push_back(v);
  }
  return MustBuild(builder);
}

Graph GenerateCycle(NodeId num_nodes) {
  CW_CHECK_GT(num_nodes, 0u);
  GraphBuilder builder(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    builder.AddEdge(v, (v + 1) % num_nodes);
  }
  return MustBuild(builder);
}

Graph GeneratePath(NodeId num_nodes) {
  CW_CHECK_GT(num_nodes, 0u);
  GraphBuilder builder(num_nodes);
  for (NodeId v = 0; v + 1 < num_nodes; ++v) builder.AddEdge(v, v + 1);
  return MustBuild(builder);
}

Graph GenerateStarInward(NodeId num_nodes) {
  CW_CHECK_GT(num_nodes, 0u);
  GraphBuilder builder(num_nodes);
  for (NodeId v = 1; v < num_nodes; ++v) builder.AddEdge(v, 0);
  return MustBuild(builder);
}

Graph GenerateComplete(NodeId num_nodes) {
  CW_CHECK_GT(num_nodes, 0u);
  GraphBuilder builder(num_nodes);
  builder.Reserve(static_cast<size_t>(num_nodes) * (num_nodes - 1));
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return MustBuild(builder);
}

Graph GenerateBipartite(NodeId left, NodeId right, uint32_t degree,
                        uint64_t seed) {
  CW_CHECK_GT(left, 0u);
  CW_CHECK_GT(right, 0u);
  Xoshiro256 rng(DeriveSeed(seed, 0x4249u));  // "BI"
  GraphBuilder builder(left + right);
  builder.Reserve(static_cast<size_t>(left) * degree);
  for (NodeId u = 0; u < left; ++u) {
    for (uint32_t j = 0; j < degree; ++j) {
      builder.AddEdge(u, left + rng.UniformInt32(right));
    }
  }
  return MustBuild(builder);
}

std::vector<PaperDataset> AllPaperDatasets() {
  return {PaperDataset::kWikiVote, PaperDataset::kWikiTalk,
          PaperDataset::kTwitter2010, PaperDataset::kUkUnion,
          PaperDataset::kClueWeb};
}

PaperDatasetInstance MakePaperDataset(PaperDataset dataset, uint64_t seed,
                                      double scale, ThreadPool* pool) {
  CW_CHECK_GT(scale, 0.0);
  CW_CHECK_LE(scale, 1.0);
  struct Spec {
    const char* name;
    uint64_t paper_nodes;
    uint64_t paper_edges;
    const char* paper_size;
    NodeId default_nodes;  // laptop-scale stand-in size at scale = 1
  };
  // Stand-in node counts shrink the paper's graphs to laptop scale while
  // keeping (a) the relative ordering of the five datasets and (b) each
  // dataset's average degree, which is what drives walk costs.
  static constexpr Spec kSpecs[] = {
      {"wiki-vote", 7115, 103689, "476.8KB", 7115},  // kept at full size
      {"wiki-talk", 2400000, 5000000, "45.6MB", 120000},
      {"twitter-2010", 42000000, 1500000000, "11.4GB", 200000},
      {"uk-union", 131000000, 5500000000ull, "48.3GB", 300000},
      {"clue-web", 1000000000, 42600000000ull, "401.1GB", 500000},
  };
  const Spec& spec = kSpecs[static_cast<int>(dataset)];
  const double avg_degree = static_cast<double>(spec.paper_edges) /
                            static_cast<double>(spec.paper_nodes);
  const NodeId nodes = std::max<NodeId>(
      64, static_cast<NodeId>(std::llround(spec.default_nodes * scale)));
  const uint64_t edges = std::max<uint64_t>(
      nodes, static_cast<uint64_t>(std::llround(nodes * avg_degree)));

  PaperDatasetInstance inst;
  inst.name = spec.name;
  inst.paper_nodes = spec.paper_nodes;
  inst.paper_edges = spec.paper_edges;
  inst.paper_size = spec.paper_size;
  inst.graph =
      GenerateRmat(nodes, edges,
                   DeriveSeed(seed, static_cast<uint64_t>(dataset)),
                   RmatOptions(), pool);
  return inst;
}

}  // namespace cloudwalker
