// Connectivity utilities: weakly connected components, BFS reachability,
// and subgraph extraction with node relabeling. Used for dataset hygiene
// (SimRank mass cannot cross weak components) and by the examples.

#ifndef CLOUDWALKER_GRAPH_COMPONENTS_H_
#define CLOUDWALKER_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Weakly-connected-component labelling.
struct ComponentInfo {
  /// component[v] in [0, num_components); components are numbered by the
  /// smallest node id they contain, in increasing order.
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
  /// Nodes per component.
  std::vector<uint64_t> sizes;

  /// Id of the largest component (ties broken by lower id).
  uint32_t LargestComponent() const;
};

/// Computes weakly connected components (edges treated as undirected).
ComponentInfo ComputeWeakComponents(const Graph& graph);

/// Nodes reachable from `source` following edges in the given direction
/// within at most `max_hops` steps (kForward = out-edges). The source is
/// included at distance 0. Returns (node, distance) pairs in BFS order.
enum class Direction { kForward = 0, kBackward = 1 };
struct BfsVisit {
  NodeId node;
  uint32_t distance;
};
std::vector<BfsVisit> BfsReachable(const Graph& graph, NodeId source,
                                   Direction direction,
                                   uint32_t max_hops = 0xffffffffu);

/// Extracts the subgraph induced by `nodes` (deduplicated), relabelling
/// them 0..k-1 in ascending original-id order. `old_to_new` (optional)
/// receives the mapping (kInvalidNode for dropped nodes).
/// Fails if `nodes` contains an out-of-range id.
StatusOr<Graph> InducedSubgraph(const Graph& graph,
                                const std::vector<NodeId>& nodes,
                                std::vector<NodeId>* old_to_new = nullptr);

/// Convenience: the induced subgraph of the largest weak component,
/// with `old_to_new` as in InducedSubgraph.
Graph LargestComponentSubgraph(const Graph& graph,
                               std::vector<NodeId>* old_to_new = nullptr);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_COMPONENTS_H_
