// Synthetic graph generators: classical random models, simple fixed
// topologies for tests, and scaled stand-ins for the paper's five datasets.

#ifndef CLOUDWALKER_GRAPH_GENERATORS_H_
#define CLOUDWALKER_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/threading.h"
#include "graph/graph.h"

namespace cloudwalker {

/// G(n, m) Erdős–Rényi digraph: m edges sampled uniformly (dedup'd, so the
/// final count can be slightly below m on dense settings).
Graph GenerateErdosRenyi(NodeId num_nodes, uint64_t num_edges, uint64_t seed);

/// R-MAT (Chakrabarti et al.) power-law digraph. Quadrant probabilities
/// default to the Graph500 values. `num_nodes` need not be a power of two;
/// ids are folded down from the enclosing 2^k grid.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Randomly perturb quadrant probabilities per level (reduces artefacts).
  bool noise = true;
};
/// Edge sampling parallelizes over `pool` when provided; results are
/// identical regardless of thread count (per-chunk derived RNG streams).
Graph GenerateRmat(NodeId num_nodes, uint64_t num_edges, uint64_t seed,
                   const RmatOptions& options = {},
                   ThreadPool* pool = nullptr);

/// Directed Barabási–Albert preferential attachment: each new node links to
/// `attach` existing nodes chosen proportionally to in-degree + 1.
Graph GenerateBarabasiAlbert(NodeId num_nodes, uint32_t attach,
                             uint64_t seed);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Graph GenerateCycle(NodeId num_nodes);

/// Simple path 0 -> 1 -> ... -> n-1.
Graph GeneratePath(NodeId num_nodes);

/// Star: leaves 1..n-1 all point at the hub 0.
Graph GenerateStarInward(NodeId num_nodes);

/// Complete digraph on n nodes (no self loops).
Graph GenerateComplete(NodeId num_nodes);

/// Random bipartite digraph: `left` user nodes point at `right` item nodes
/// (ids [left, left+right)), each left node linking to `degree` uniform
/// items. Models recommender workloads.
Graph GenerateBipartite(NodeId left, NodeId right, uint32_t degree,
                        uint64_t seed);

/// The five datasets of the paper's evaluation, as scaled R-MAT stand-ins
/// preserving name, node ordering, and average degree.
enum class PaperDataset {
  kWikiVote = 0,     // paper: |V|=7.1K,  |E|=103K
  kWikiTalk = 1,     // paper: |V|=2.4M,  |E|=5M
  kTwitter2010 = 2,  // paper: |V|=42M,   |E|=1.5B
  kUkUnion = 3,      // paper: |V|=131M,  |E|=5.5B
  kClueWeb = 4,      // paper: |V|=1B,    |E|=42.6B
};

/// All five datasets in evaluation order.
std::vector<PaperDataset> AllPaperDatasets();

/// A generated dataset plus the original statistics it stands in for.
struct PaperDatasetInstance {
  std::string name;          // e.g. "wiki-vote"
  Graph graph;               // the scaled synthetic counterpart
  uint64_t paper_nodes = 0;  // |V| reported in the paper
  uint64_t paper_edges = 0;  // |E| reported in the paper
  std::string paper_size;    // on-disk size reported in the paper
};

/// Generates the stand-in for `dataset`. `scale` in (0, 1] shrinks the
/// default laptop-sized instance further (benchmark --quick modes); node
/// counts are floored at 64. Generation parallelizes over `pool`.
PaperDatasetInstance MakePaperDataset(PaperDataset dataset, uint64_t seed,
                                      double scale = 1.0,
                                      ThreadPool* pool = nullptr);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_GENERATORS_H_
