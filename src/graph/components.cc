#include "graph/components.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace cloudwalker {

uint32_t ComponentInfo::LargestComponent() const {
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  return best;
}

ComponentInfo ComputeWeakComponents(const Graph& graph) {
  ComponentInfo info;
  const NodeId n = graph.num_nodes();
  info.component.assign(n, 0xffffffffu);
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (info.component[root] != 0xffffffffu) continue;
    const uint32_t label = info.num_components++;
    info.sizes.push_back(0);
    info.component[root] = label;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++info.sizes[label];
      for (const NodeId u : graph.OutNeighbors(v)) {
        if (info.component[u] == 0xffffffffu) {
          info.component[u] = label;
          frontier.push_back(u);
        }
      }
      for (const NodeId u : graph.InNeighbors(v)) {
        if (info.component[u] == 0xffffffffu) {
          info.component[u] = label;
          frontier.push_back(u);
        }
      }
    }
  }
  return info;
}

std::vector<BfsVisit> BfsReachable(const Graph& graph, NodeId source,
                                   Direction direction, uint32_t max_hops) {
  CW_CHECK_LT(source, graph.num_nodes());
  std::vector<BfsVisit> order;
  std::vector<bool> seen(graph.num_nodes(), false);
  std::deque<BfsVisit> frontier;
  seen[source] = true;
  frontier.push_back({source, 0});
  while (!frontier.empty()) {
    const BfsVisit v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    if (v.distance >= max_hops) continue;
    const auto neighbors = direction == Direction::kForward
                               ? graph.OutNeighbors(v.node)
                               : graph.InNeighbors(v.node);
    for (const NodeId u : neighbors) {
      if (!seen[u]) {
        seen[u] = true;
        frontier.push_back({u, v.distance + 1});
      }
    }
  }
  return order;
}

StatusOr<Graph> InducedSubgraph(const Graph& graph,
                                const std::vector<NodeId>& nodes,
                                std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> keep(nodes);
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  for (const NodeId v : keep) {
    if (v >= graph.num_nodes()) {
      return Status::InvalidArgument("subgraph node " + std::to_string(v) +
                                     " out of range");
    }
  }
  std::vector<NodeId> mapping(graph.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < keep.size(); ++i) mapping[keep[i]] = i;

  GraphBuilder builder(static_cast<NodeId>(keep.size()));
  for (const NodeId v : keep) {
    for (const NodeId t : graph.OutNeighbors(v)) {
      if (mapping[t] != kInvalidNode) {
        builder.AddEdge(mapping[v], mapping[t]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  // The source graph is already clean; keep its edges verbatim.
  GraphBuildOptions options;
  options.dedup = false;
  options.remove_self_loops = false;
  return builder.Build(options);
}

Graph LargestComponentSubgraph(const Graph& graph,
                               std::vector<NodeId>* old_to_new) {
  const ComponentInfo info = ComputeWeakComponents(graph);
  if (info.num_components == 0) return Graph();
  const uint32_t target = info.LargestComponent();
  std::vector<NodeId> nodes;
  nodes.reserve(info.sizes[target]);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (info.component[v] == target) nodes.push_back(v);
  }
  auto sub = InducedSubgraph(graph, nodes, old_to_new);
  CW_CHECK(sub.ok()) << sub.status().ToString();
  return std::move(sub).value();
}

}  // namespace cloudwalker
