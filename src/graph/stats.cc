#include "graph/stats.h"

#include <algorithm>

namespace cloudwalker {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t in = graph.InDegree(v);
    const uint32_t out = graph.OutDegree(v);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    if (in == 0) ++stats.dangling_in;
    if (out == 0) ++stats.dangling_out;
  }
  stats.avg_degree =
      stats.num_nodes == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) / stats.num_nodes;
  return stats;
}

DegreeHistogram ComputeInDegreeHistogram(const Graph& graph) {
  DegreeHistogram hist;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t d = graph.InDegree(v);
    if (d == 0) {
      ++hist.zero;
      continue;
    }
    size_t bucket = 0;
    while ((uint32_t{1} << (bucket + 1)) <= d) ++bucket;
    if (hist.buckets.size() <= bucket) hist.buckets.resize(bucket + 1, 0);
    ++hist.buckets[bucket];
  }
  return hist;
}

}  // namespace cloudwalker
