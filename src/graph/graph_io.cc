#include "graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "common/string_util.h"

namespace cloudwalker {
namespace {

constexpr uint64_t kGraphMagic = 0x434c574b47525048ull;  // "CLWKGRPH"
constexpr uint32_t kGraphVersion = 1;

}  // namespace

StatusOr<Graph> LoadEdgeListText(const std::string& path,
                                 const GraphBuildOptions& options,
                                 NodeId num_nodes_hint) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open edge list: " + path);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  bool any_node = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::istringstream ls{std::string(sv)};
    uint64_t from = 0, to = 0;
    if (!(ls >> from >> to)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 'from to'");
    }
    if (from >= kInvalidNode || to >= kInvalidNode) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": node id exceeds 32-bit range");
    }
    edges.emplace_back(static_cast<NodeId>(from), static_cast<NodeId>(to));
    max_id = std::max(max_id, static_cast<NodeId>(std::max(from, to)));
    any_node = true;
  }
  const NodeId num_nodes =
      std::max(num_nodes_hint, any_node ? max_id + 1 : NodeId{0});
  GraphBuilder builder(num_nodes);
  builder.Reserve(edges.size());
  for (const auto& [f, t] : edges) builder.AddEdge(f, t);
  return builder.Build(options);
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId t : graph.OutNeighbors(v)) {
      std::fprintf(f, "%" PRIu32 " %" PRIu32 "\n", v, t);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

Status SaveGraphBinary(const Graph& graph, const std::string& path) {
  BinaryWriter w;
  w.Write(kGraphMagic);
  w.Write(kGraphVersion);
  w.Write<uint32_t>(graph.num_nodes());
  // Offsets are recomputable from degrees, but storing them keeps the loader
  // trivial and the file still ~8 bytes/edge.
  std::vector<uint64_t> out_offsets(graph.num_nodes() + 1);
  std::vector<NodeId> out_targets;
  out_targets.reserve(graph.num_edges());
  out_offsets[0] = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId t : graph.OutNeighbors(v)) out_targets.push_back(t);
    out_offsets[v + 1] = out_targets.size();
  }
  w.WriteVector(out_offsets);
  w.WriteVector(out_targets);
  return w.Flush(path);
}

Status LoadGraphBinary(const std::string& path, Graph* graph) {
  std::string buffer;
  CW_RETURN_IF_ERROR(BinaryReader::LoadFile(path, &buffer));
  BinaryReader r(buffer);
  uint64_t magic = 0;
  uint32_t version = 0, num_nodes = 0;
  CW_RETURN_IF_ERROR(r.Read(&magic));
  if (magic != kGraphMagic) {
    return Status::InvalidArgument("not a CloudWalker graph file: " + path);
  }
  CW_RETURN_IF_ERROR(r.Read(&version));
  if (version != kGraphVersion) {
    return Status::InvalidArgument("unsupported graph version " +
                                   std::to_string(version));
  }
  CW_RETURN_IF_ERROR(r.Read(&num_nodes));
  std::vector<uint64_t> out_offsets;
  std::vector<NodeId> out_targets;
  CW_RETURN_IF_ERROR(r.ReadVector(&out_offsets));
  CW_RETURN_IF_ERROR(r.ReadVector(&out_targets));
  if (out_offsets.size() != static_cast<size_t>(num_nodes) + 1 ||
      out_offsets.front() != 0 || out_offsets.back() != out_targets.size()) {
    return Status::InvalidArgument("corrupt graph file: " + path);
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    if (out_offsets[v] > out_offsets[v + 1]) {
      return Status::InvalidArgument("corrupt offsets in " + path);
    }
  }
  for (NodeId t : out_targets) {
    if (t >= num_nodes) {
      return Status::InvalidArgument("edge target out of range in " + path);
    }
  }
  // Rebuild through GraphBuilder so in-CSR and sorting invariants hold.
  GraphBuilder builder(num_nodes);
  builder.Reserve(out_targets.size());
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (uint64_t i = out_offsets[v]; i < out_offsets[v + 1]; ++i) {
      builder.AddEdge(v, out_targets[i]);
    }
  }
  // Snapshots are written from clean graphs; keep parallel edges/self-loops
  // exactly as stored.
  GraphBuildOptions opts;
  opts.dedup = false;
  opts.remove_self_loops = false;
  auto built = builder.Build(opts);
  if (!built.ok()) return built.status();
  *graph = std::move(built).value();
  return Status::Ok();
}

}  // namespace cloudwalker
