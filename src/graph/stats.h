// Degree statistics used by the dataset table and by sanity checks.

#ifndef CLOUDWALKER_GRAPH_STATS_H_
#define CLOUDWALKER_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cloudwalker {

/// Aggregate degree statistics of a digraph.
struct DegreeStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
  double avg_degree = 0.0;        // edges / nodes
  uint64_t dangling_in = 0;       // nodes with no in-neighbors (walks die)
  uint64_t dangling_out = 0;      // nodes with no out-neighbors
};

/// Computes DegreeStats in one pass.
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Histogram of in-degrees in power-of-two buckets: bucket k counts nodes
/// with in-degree in [2^k, 2^(k+1)); bucket 0 additionally includes degree 0
/// at index 0 of the returned pair's `.first`.
struct DegreeHistogram {
  uint64_t zero = 0;                 // nodes with degree exactly 0
  std::vector<uint64_t> buckets;     // buckets[k]: degree in [2^k, 2^{k+1})
};

/// In-degree histogram (drives the power-law shape checks in tests).
DegreeHistogram ComputeInDegreeHistogram(const Graph& graph);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_STATS_H_
