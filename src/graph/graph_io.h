// Graph persistence: SNAP-style whitespace edge-list text files and a
// compact binary CSR snapshot format.

#ifndef CLOUDWALKER_GRAPH_GRAPH_IO_H_
#define CLOUDWALKER_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Parses a text edge list: one "from to" pair per line, '#' comments and
/// blank lines skipped. Node ids may be sparse; they are used verbatim, and
/// num_nodes = max id + 1 (or `num_nodes_hint` if larger).
StatusOr<Graph> LoadEdgeListText(const std::string& path,
                                 const GraphBuildOptions& options = {},
                                 NodeId num_nodes_hint = 0);

/// Writes "from to" lines, one per edge.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Writes the CSR snapshot (magic, version, offsets, targets).
Status SaveGraphBinary(const Graph& graph, const std::string& path);

/// Reads a CSR snapshot written by SaveGraphBinary.
Status LoadGraphBinary(const std::string& path, Graph* graph);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_GRAPH_IO_H_
