// Immutable directed graph in compressed-sparse-row form, with both
// out-adjacency (forward edges) and in-adjacency (reverse edges) because
// SimRank walks follow in-links while MCSS pushes mass along out-links.

#ifndef CLOUDWALKER_GRAPH_GRAPH_H_
#define CLOUDWALKER_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudwalker {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Immutable CSR digraph. Construct with GraphBuilder or the generators in
/// graph/generators.h. Copyable (deep) and cheaply movable.
class Graph {
 public:
  /// An empty graph with zero nodes.
  Graph() = default;

  /// Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of directed edges.
  uint64_t num_edges() const { return out_targets_.size(); }

  /// Targets of edges leaving `v` (sorted ascending).
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// Sources of edges entering `v` (sorted ascending).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree of `v`.
  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  /// In-degree of `v`.
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// The k-th in-neighbor of `v` (unchecked).
  NodeId InNeighbor(NodeId v, uint32_t k) const {
    return in_targets_[in_offsets_[v] + k];
  }

  /// The k-th out-neighbor of `v` (unchecked).
  NodeId OutNeighbor(NodeId v, uint32_t k) const {
    return out_targets_[out_offsets_[v] + k];
  }

  /// True if the edge (from -> to) exists; O(log outdeg(from)).
  bool HasEdge(NodeId from, NodeId to) const;

  /// Resident memory of the CSR arrays in bytes.
  uint64_t MemoryBytes() const;

  /// Returns a graph with every edge reversed (out <-> in swapped); O(1),
  /// shares no state with this graph (deep copy of the swapped arrays).
  Graph Reversed() const;

 private:
  friend class GraphBuilder;
  friend Status LoadGraphBinary(const std::string& path, Graph* graph);

  NodeId num_nodes_ = 0;
  std::vector<uint64_t> out_offsets_{0};  // size num_nodes_+1
  std::vector<NodeId> out_targets_;
  std::vector<uint64_t> in_offsets_{0};   // size num_nodes_+1
  std::vector<NodeId> in_targets_;
};

/// Options controlling GraphBuilder::Build.
struct GraphBuildOptions {
  /// Remove duplicate parallel edges.
  bool dedup = true;
  /// Remove self loops (v -> v). SimRank is conventionally defined on
  /// loop-free graphs; keep the default unless studying sensitivity.
  bool remove_self_loops = true;
};

/// Accumulates an edge list and produces an immutable Graph.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds a directed edge; ids are validated at Build time.
  void AddEdge(NodeId from, NodeId to) { edges_.push_back({from, to}); }

  /// Number of edges added so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Reserves capacity for `n` AddEdge calls.
  void Reserve(size_t n) { edges_.reserve(n); }

  /// Builds the CSR representation. Fails with InvalidArgument if any edge
  /// endpoint is out of range. The builder is left empty afterwards.
  StatusOr<Graph> Build(const GraphBuildOptions& options = {});

 private:
  struct Edge {
    NodeId from;
    NodeId to;
  };
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_GRAPH_H_
