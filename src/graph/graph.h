// Immutable directed graph in compressed-sparse-row form, with both
// out-adjacency (forward edges) and in-adjacency (reverse edges) because
// SimRank walks follow in-links while MCSS pushes mass along out-links.

#ifndef CLOUDWALKER_GRAPH_GRAPH_H_
#define CLOUDWALKER_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudwalker {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Immutable CSR digraph. Construct with GraphBuilder, the generators in
/// graph/generators.h, or — zero-copy over external flat arrays such as an
/// mmapped snapshot — FromCsrViews. Accessors read through internal spans,
/// so the same kernel code walks a heap-built graph and a snapshot view
/// identically (DESIGN.md section 9). Copying always materializes into
/// owned storage (a copy never dangles when the external memory goes
/// away); moves are cheap and preserve the storage mode.
class Graph {
 public:
  /// An empty graph with zero nodes.
  Graph() { AdoptOwnedStorage(); }

  Graph(const Graph& other) { CopyFrom(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  // Vector moves keep the heap buffers in place, so the spans stay valid.
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Wraps externally owned CSR arrays without copying. The arrays must
  /// satisfy the builder's invariants (offsets of size num_nodes + 1
  /// starting at 0, per-row sorted targets) and must outlive the returned
  /// graph and every move of it — the caller keeps ownership (the snapshot
  /// layer pins the backing mmap for exactly this reason).
  static Graph FromCsrViews(NodeId num_nodes,
                            std::span<const uint64_t> out_offsets,
                            std::span<const NodeId> out_targets,
                            std::span<const uint64_t> in_offsets,
                            std::span<const NodeId> in_targets);

  /// False when the CSR arrays alias external memory (FromCsrViews).
  bool owns_storage() const {
    return out_offsets_v_.data() == out_offsets_.data();
  }

  /// Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of directed edges.
  uint64_t num_edges() const { return out_targets_v_.size(); }

  /// Targets of edges leaving `v` (sorted ascending).
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {out_targets_v_.data() + out_offsets_v_[v],
            out_targets_v_.data() + out_offsets_v_[v + 1]};
  }

  /// Sources of edges entering `v` (sorted ascending).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_targets_v_.data() + in_offsets_v_[v],
            in_targets_v_.data() + in_offsets_v_[v + 1]};
  }

  /// Out-degree of `v`.
  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_offsets_v_[v + 1] - out_offsets_v_[v]);
  }

  /// In-degree of `v`.
  uint32_t InDegree(NodeId v) const {
    return static_cast<uint32_t>(in_offsets_v_[v + 1] - in_offsets_v_[v]);
  }

  /// The k-th in-neighbor of `v` (unchecked).
  NodeId InNeighbor(NodeId v, uint32_t k) const {
    return in_targets_v_[in_offsets_v_[v] + k];
  }

  /// The k-th out-neighbor of `v` (unchecked).
  NodeId OutNeighbor(NodeId v, uint32_t k) const {
    return out_targets_v_[out_offsets_v_[v] + k];
  }

  /// The raw CSR arrays (offsets size num_nodes + 1, targets size
  /// num_edges). The snapshot writer streams these to disk verbatim.
  std::span<const uint64_t> OutOffsets() const { return out_offsets_v_; }
  std::span<const NodeId> OutTargets() const { return out_targets_v_; }
  std::span<const uint64_t> InOffsets() const { return in_offsets_v_; }
  std::span<const NodeId> InTargets() const { return in_targets_v_; }

  /// True if the edge (from -> to) exists; O(log outdeg(from)).
  bool HasEdge(NodeId from, NodeId to) const;

  /// Resident memory of the CSR arrays in bytes (external view memory
  /// counts too: it is what the kernels actually touch).
  uint64_t MemoryBytes() const;

  /// Returns a graph with every edge reversed (out <-> in swapped);
  /// shares no state with this graph (deep copy of the swapped arrays).
  Graph Reversed() const;

 private:
  friend class GraphBuilder;

  // Re-points every view at this instance's owned vectors.
  void AdoptOwnedStorage();
  // Deep copy: materializes `other`'s views into owned storage.
  void CopyFrom(const Graph& other);

  NodeId num_nodes_ = 0;
  // Owned backing arrays (empty in view mode).
  std::vector<uint64_t> out_offsets_{0};  // size num_nodes_+1
  std::vector<NodeId> out_targets_;
  std::vector<uint64_t> in_offsets_{0};   // size num_nodes_+1
  std::vector<NodeId> in_targets_;
  // What the accessors read: the owned vectors or external flat arrays.
  std::span<const uint64_t> out_offsets_v_;
  std::span<const NodeId> out_targets_v_;
  std::span<const uint64_t> in_offsets_v_;
  std::span<const NodeId> in_targets_v_;
};

/// Options controlling GraphBuilder::Build.
struct GraphBuildOptions {
  /// Remove duplicate parallel edges.
  bool dedup = true;
  /// Remove self loops (v -> v). SimRank is conventionally defined on
  /// loop-free graphs; keep the default unless studying sensitivity.
  bool remove_self_loops = true;
};

/// Accumulates an edge list and produces an immutable Graph.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds a directed edge; ids are validated at Build time.
  void AddEdge(NodeId from, NodeId to) { edges_.push_back({from, to}); }

  /// Number of edges added so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// Reserves capacity for `n` AddEdge calls.
  void Reserve(size_t n) { edges_.reserve(n); }

  /// Builds the CSR representation. Fails with InvalidArgument if any edge
  /// endpoint is out of range. The builder is left empty afterwards.
  StatusOr<Graph> Build(const GraphBuildOptions& options = {});

 private:
  struct Edge {
    NodeId from;
    NodeId to;
  };
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_GRAPH_GRAPH_H_
