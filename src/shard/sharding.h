// Shard layout for the in-process multi-shard walk engine (DESIGN.md
// section 11): the partition plan, the per-shard graph slices, and the
// cost-model placement scoring.
//
// A ShardPlan hash- or range-partitions the node space with
// cluster/partitioner and materializes one ShardSlice per shard: the
// shard's owned nodes, a local CSR over their in-adjacency (targets keep
// *global* ids — walkers address the whole graph), and, optionally, a copy
// of the alias-arena rows of the owned nodes. During a walk job, a shard
// worker touches only its own slice; adjacency of nodes it does not own is
// reachable solely through ShardPlan::InRow, which the engine counts as a
// remote row fetch (the in-process stand-in for a distributed
// adjacency-fetch message).
//
// Placement (kAuto) scores both strategies with the simulated-cluster
// CostModel — per-superstep critical path of the busiest shard plus the
// exchange cost of the edges that cross shards — and keeps the cheaper
// layout, mirroring how the paper's Broadcasting model weighs compute
// balance against communication.

#ifndef CLOUDWALKER_SHARD_SHARDING_H_
#define CLOUDWALKER_SHARD_SHARDING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/partitioner.h"
#include "engine/alias.h"
#include "graph/graph.h"

namespace cloudwalker {

/// Configuration of a sharded engine build.
struct ShardingOptions {
  /// Desired placement strategy. kAuto scores kHash vs kRange with the
  /// cost model and picks the cheaper one.
  enum class Placement { kAuto = 0, kHash = 1, kRange = 2 };

  /// Number of in-process shard workers (>= 1). Shards may own zero nodes
  /// (range partitioning with more shards than nodes); empty shards simply
  /// never receive walkers.
  int num_shards = 2;
  Placement placement = Placement::kAuto;
  /// Copy the alias-arena rows of each shard's owned nodes into its slice.
  /// Off, shards resolve moves against the slice CSR alone — results are
  /// bit-identical either way (in-link rows are uniform).
  bool use_arena = true;
  /// Worker threads of the engine-owned pool driving the supersteps.
  /// 0 runs every superstep serially on the calling thread (still a real
  /// multi-shard execution — just time-sliced), which is the safe default
  /// under a serving layer that already parallelizes across requests.
  int num_threads = 0;
  /// Cost model used for kAuto placement scoring.
  CostModel cost_model = CostModel::Default();
};

/// One shard's owned portion of the graph. `nodes` are the owned global
/// ids, ascending; row r of the local CSR describes the in-adjacency of
/// nodes[r]. Targets are global ids. `slots` mirrors the arena rows of the
/// owned nodes (same row offsets as `offsets`) and is empty when the plan
/// was built without arena slices.
struct ShardSlice {
  std::vector<NodeId> nodes;
  std::vector<uint64_t> offsets;  // nodes.size() + 1 entries
  std::vector<NodeId> targets;
  std::vector<AliasSlot> slots;

  uint64_t num_edges() const { return targets.size(); }

  /// In-neighbors of local row `row` (ascending global ids).
  std::span<const NodeId> Row(uint32_t row) const {
    return {targets.data() + offsets[row],
            static_cast<size_t>(offsets[row + 1] - offsets[row])};
  }
  uint32_t RowDegree(uint32_t row) const {
    return static_cast<uint32_t>(offsets[row + 1] - offsets[row]);
  }
};

/// Cost-model score of one placement strategy (see DESIGN.md section 11).
struct PlacementScore {
  /// Estimated seconds per superstep: busiest-shard compute + exchange.
  double superstep_seconds = 0.0;
  /// In-edges whose endpoint is owned by a different shard than the node.
  uint64_t crossing_edges = 0;
  /// In-edges of the busiest shard (critical-path proxy).
  uint64_t max_shard_edges = 0;
};

/// The partition plan: node -> shard assignment plus the materialized
/// slices. Immutable after Build; cheap to share by const reference.
class ShardPlan {
 public:
  /// Partitions `graph` into options.num_shards slices. `arena` (optional)
  /// supplies the alias rows copied into the slices when
  /// options.use_arena; pass null to force CSR-only slices.
  static ShardPlan Build(const Graph& graph, const AliasArena* arena,
                         const ShardingOptions& options);

  /// Scores `strategy` for `graph` under `model` without materializing
  /// slices (exposed for tests and placement diagnostics).
  static PlacementScore Score(const Graph& graph, PartitionStrategy strategy,
                              int num_shards, const CostModel& model);

  int num_shards() const { return partitioner_.num_workers(); }
  PartitionStrategy strategy() const { return partitioner_.strategy(); }

  /// The shard owning `node`.
  int Owner(NodeId node) const { return partitioner_.Owner(node); }

  /// The local CSR row of `node` within its owning shard's slice.
  uint32_t LocalRow(NodeId node) const { return local_row_[node]; }

  const ShardSlice& slice(int shard) const { return slices_[shard]; }

  /// In-neighbors of `node`, served from the owning shard's slice.
  /// `caller_shard` is the shard asking; *remote is set to true when the
  /// row lives on a different shard (a cross-shard adjacency fetch).
  std::span<const NodeId> InRow(NodeId node, int caller_shard,
                                bool* remote) const {
    const int owner = Owner(node);
    *remote = owner != caller_shard;
    return slices_[owner].Row(local_row_[node]);
  }

  /// The score of the chosen strategy and of the alternative, as computed
  /// at build time (equal strategies when placement was forced).
  const PlacementScore& chosen_score() const { return chosen_score_; }
  const PlacementScore& other_score() const { return other_score_; }

  /// True when the plan carries arena slices.
  bool has_arena_slices() const;

 private:
  ShardPlan(Partitioner partitioner, std::vector<ShardSlice> slices,
            std::vector<uint32_t> local_row, PlacementScore chosen,
            PlacementScore other)
      : partitioner_(partitioner),
        slices_(std::move(slices)),
        local_row_(std::move(local_row)),
        chosen_score_(chosen),
        other_score_(other) {}

  Partitioner partitioner_;
  std::vector<ShardSlice> slices_;
  std::vector<uint32_t> local_row_;  // node -> row in its owner's slice
  PlacementScore chosen_score_;
  PlacementScore other_score_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SHARD_SHARDING_H_
