#include "shard/sharded_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "engine/walk_kernel.h"

namespace cloudwalker {
namespace {

// One walker in flight between shards: its id (the RNG stream index), its
// current node, and — for second-order programs — the node it came from.
// This is the exchange wire record; everything else a shard needs to
// advance the walker is derivable from (config, walker, step).
struct WalkerRec {
  uint32_t walker = 0;
  NodeId cur = kInvalidNode;
  NodeId prev = kInvalidNode;
};

// Uniform in-neighbor pick against a shard slice, resolved exactly like
// the single-node kernel's pass 3 (and its plain-CSR fallback): the slice
// either mirrors the alias rows (accept test, then target or alias) or
// indexes the local CSR row directly. In-link rows are uniform, so both
// consume `raw` identically — the arena-vs-CSR half of the bit-identity
// matrix.
inline NodeId ResolveUniform(const ShardSlice& sl, uint32_t row,
                             uint64_t raw, uint32_t deg) {
  const uint32_t slot = AliasArena::PickSlot(raw, deg);
  const uint64_t off = sl.offsets[row];
  if (!sl.slots.empty()) {
    const AliasSlot s = sl.slots[off + slot];
    return static_cast<uint32_t>(raw) < s.accept ? sl.targets[off + slot]
                                                 : s.alias;
  }
  return sl.targets[off + slot];
}

// The three walk programs, restated as shard policies. Every draw below
// matches the corresponding single-node program (engine/walk_kernel.h,
// engine/walk_program.cc) bit for bit: the canonical move stream
// CounterRandom(DeriveSeed(seed, source), walker << 32 | step) plus the
// per-program channels. A policy is shared read-only across shard
// workers; all mutable walk state stays in the per-shard cursors.

struct SimRankShardPolicy {
  static constexpr bool kMayRetire = false;
  static constexpr bool kSecondOrder = false;
  static constexpr bool kEmitsLevels = true;

  uint64_t key = 0;  // DeriveSeed(config.seed, source)

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }
};

struct PprShardPolicy {
  static constexpr bool kMayRetire = true;
  static constexpr bool kSecondOrder = false;
  static constexpr bool kEmitsLevels = false;

  double alpha = 0.85;
  uint64_t key = 0;
  uint64_t stop_key = 0;  // DeriveSeed(key, kPprStopChannel)

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }
  bool Retire(uint32_t w, uint32_t t) const {
    const uint64_t coin =
        CounterRandom(stop_key, (static_cast<uint64_t>(w) << 32) | t);
    return DrawToUnit(coin) >= alpha;
  }
};

struct Node2VecShardPolicy {
  static constexpr bool kMayRetire = false;
  static constexpr bool kSecondOrder = true;
  static constexpr bool kEmitsLevels = true;

  const ShardPlan* plan = nullptr;
  uint32_t max_trials = 64;
  uint64_t key = 0;
  uint64_t trial_base = 0;  // DeriveSeed(key, kNode2VecTrialChannel)
  uint64_t thr_return = 0;
  uint64_t thr_near = 0;
  uint64_t thr_far = 0;

  void Configure(const Node2VecParams& params) {
    CW_CHECK_GT(params.return_p, 0.0);
    CW_CHECK_GT(params.in_out_q, 0.0);
    CW_CHECK_GT(params.max_trials, 0u);
    const double w_return = 1.0 / params.return_p;
    const double w_far = 1.0 / params.in_out_q;
    const double w_max = std::max({1.0, w_return, w_far});
    thr_return = AcceptThreshold(w_return / w_max);
    thr_near = AcceptThreshold(1.0 / w_max);
    thr_far = AcceptThreshold(w_far / w_max);
    max_trials = params.max_trials;
  }

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }

  // Full second-order step. In(prev) may live on another shard — the
  // fetch goes through the plan's owning slice and is counted as a remote
  // row read, the in-process stand-in for a cross-worker adjacency
  // message.
  NodeId Advance(uint32_t w, uint32_t t, NodeId cur, NodeId prev,
                 const ShardSlice& sl, uint32_t row, uint32_t deg,
                 int shard, uint64_t* remote_rows) const {
    (void)cur;
    if (prev == kInvalidNode) {
      // First step: uniform on the canonical move stream — the same draw
      // SimRank would make.
      return ResolveUniform(sl, row, Draw(w, t), deg);
    }
    const uint64_t trial_key =
        DeriveSeed(trial_base, (static_cast<uint64_t>(w) << 32) | t);
    bool remote = false;
    const auto in_prev = plan->InRow(prev, shard, &remote);
    if (remote) ++*remote_rows;
    NodeId candidate = kInvalidNode;
    for (uint32_t trial = 0; trial < max_trials; ++trial) {
      const uint64_t raw = CounterRandom(trial_key, trial);
      candidate = ResolveUniform(sl, row, raw, deg);
      uint64_t threshold;
      if (candidate == prev) {
        threshold = thr_return;
      } else if (std::binary_search(in_prev.begin(), in_prev.end(),
                                    candidate)) {
        threshold = thr_near;
      } else {
        threshold = thr_far;
      }
      if ((raw & 0xffffffffull) < threshold) return candidate;
    }
    return candidate;  // trial cap: accept the last candidate
  }
};

}  // namespace

ShardedWalkEngine::ShardedWalkEngine(const Graph& graph, ShardPlan plan,
                                     int num_threads)
    : graph_(&graph),
      plan_(std::move(plan)),
      id_bits_(WalkKernel::IdBits(graph)),
      pool_(num_threads > 0 ? std::make_unique<ThreadPool>(num_threads)
                            : nullptr) {}

StatusOr<std::shared_ptr<const ShardedWalkEngine>> ShardedWalkEngine::Build(
    const Graph& graph, const WalkContext* context_or_null,
    const ShardingOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot shard an empty graph");
  }
  const AliasArena* arena =
      context_or_null != nullptr ? &context_or_null->arena() : nullptr;
  ShardPlan plan = ShardPlan::Build(graph, arena, options);
  return std::shared_ptr<const ShardedWalkEngine>(new ShardedWalkEngine(
      graph, std::move(plan), options.num_threads));
}

template <typename Policy>
void ShardedWalkEngine::RunSupersteps(NodeId source, const WalkConfig& config,
                                      const Policy& policy, WalkStats* stats,
                                      std::vector<SparseVector>* levels,
                                      std::vector<NodeId>* terminals) const {
  CW_CHECK_LT(source, graph_->num_nodes());
  CW_CHECK_GT(config.num_walkers, 0u);
  const uint32_t r = config.num_walkers;
  const double inv_r = 1.0 / static_cast<double>(r);
  const bool self_loop = config.dangling == DanglingPolicy::kSelfLoop;
  const int num_shards = plan_.num_shards();

  if constexpr (Policy::kEmitsLevels) {
    levels->assign(config.num_steps + 1, SparseVector());
    (*levels)[0] = SparseVector::FromSorted({SparseEntry{source, 1.0}});
  }

  // Per-shard cursors. A shard worker writes only its own state during the
  // advance phase; the exchange phase gives each *destination* exclusive
  // access to the outboxes addressed to it. Cache-line aligned so adjacent
  // shards' counters never share a line.
  struct alignas(kCacheLineBytes) ShardState {
    std::vector<WalkerRec> inbox;   // residents entering this superstep
    std::vector<WalkerRec> keep;    // residents staying for the next one
    std::vector<std::vector<WalkerRec>> outbox;  // emigrants, per dest
    std::vector<NodeId> endpoints;  // this level's recorded endpoints
    std::vector<NodeId> terminals;  // retired walkers (kMayRetire)
    WalkStats stats;
    uint64_t dead = 0;         // deaths this level (retire / dangling)
    uint64_t remote_rows = 0;  // cross-shard adjacency reads
  };
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  for (ShardState& st : shards) {
    st.outbox.resize(static_cast<size_t>(num_shards));
  }

  // Every walker starts at the source, resident on its owning shard.
  {
    ShardState& home = shards[static_cast<size_t>(plan_.Owner(source))];
    home.inbox.reserve(r);
    for (uint32_t w = 0; w < r; ++w) {
      home.inbox.push_back(WalkerRec{w, source, kInvalidNode});
    }
  }

  uint64_t alive = r;
  uint64_t supersteps = 0;
  uint64_t exchanged = 0;
  std::vector<NodeId> merged;  // coordinator's level merge buffer
  if constexpr (Policy::kEmitsLevels) merged.reserve(r);

  for (uint32_t t = 1; t <= config.num_steps && alive > 0; ++t) {
    // Cooperative stop, polled once per superstep like the single-node
    // kernel polls per level: a stopped job leaves the remaining levels
    // empty and the caller discards the truncated result wholesale.
    if (config.cancel != nullptr && config.cancel->ShouldStop()) break;

    // Phase A — advance. Each shard moves its residents one level using
    // only its slice; emigrants batch into per-destination outboxes.
    ParallelFor(
        pool_.get(), 0, static_cast<uint64_t>(num_shards), /*grain=*/1,
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t si = begin; si < end; ++si) {
            ShardState& st = shards[si];
            const ShardSlice& sl = plan_.slice(static_cast<int>(si));
            st.endpoints.clear();
            st.keep.clear();
            for (WalkerRec& rec : st.inbox) {
              const NodeId v = rec.cur;
              if constexpr (Policy::kMayRetire) {
                if (policy.Retire(rec.walker, t)) {
                  st.terminals.push_back(v);
                  ++st.dead;
                  continue;
                }
              }
              const uint32_t row = plan_.LocalRow(v);
              const uint32_t deg = sl.RowDegree(row);
              if (deg == 0) {
                ++st.stats.steps;
                if (self_loop) {
                  if constexpr (Policy::kSecondOrder) rec.prev = v;
                  if constexpr (Policy::kEmitsLevels) {
                    st.endpoints.push_back(v);
                  }
                  st.keep.push_back(rec);
                } else {
                  ++st.dead;
                }
                continue;
              }
              NodeId next;
              if constexpr (Policy::kSecondOrder) {
                next = policy.Advance(rec.walker, t, v, rec.prev, sl, row,
                                      deg, static_cast<int>(si),
                                      &st.remote_rows);
                rec.prev = v;
              } else {
                next = ResolveUniform(sl, row,
                                      policy.Draw(rec.walker, t), deg);
              }
              ++st.stats.steps;
              if constexpr (Policy::kEmitsLevels) {
                st.endpoints.push_back(next);
              }
              rec.cur = next;
              const int dest = plan_.Owner(next);
              if (dest == static_cast<int>(si)) {
                st.keep.push_back(rec);
              } else {
                ++st.stats.partition_crossings;
                st.outbox[static_cast<size_t>(dest)].push_back(rec);
              }
            }
            st.inbox.clear();
          }
        });

    // Coordinator — merge the level. Concatenating the shards' endpoint
    // lists yields the same multiset the single-node kernel drains, and
    // the shared sort-and-RLE aggregation is order independent, so the
    // level vector is bit-identical at every shard count.
    for (ShardState& st : shards) {
      alive -= st.dead;
      st.dead = 0;
    }
    if constexpr (Policy::kEmitsLevels) {
      merged.clear();
      for (const ShardState& st : shards) {
        merged.insert(merged.end(), st.endpoints.begin(),
                      st.endpoints.end());
      }
      (*levels)[t] = AggregateEndpointNodes(merged, inv_r, id_bits_);
    }

    for (const ShardState& st : shards) {
      for (const auto& box : st.outbox) exchanged += box.size();
    }

    // Phase B — exchange at the barrier: each destination drains every
    // peer's outbox addressed to it (plus its own kept residents) into
    // its next inbox. Disjoint writes per destination; the ParallelFor
    // barriers on both sides order phase A's writes before these reads.
    ParallelFor(
        pool_.get(), 0, static_cast<uint64_t>(num_shards), /*grain=*/1,
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t di = begin; di < end; ++di) {
            ShardState& st = shards[di];
            std::swap(st.inbox, st.keep);
            for (int src = 0; src < num_shards; ++src) {
              std::vector<WalkerRec>& box =
                  shards[static_cast<size_t>(src)].outbox[di];
              st.inbox.insert(st.inbox.end(), box.begin(), box.end());
              box.clear();
            }
          }
        });
    ++supersteps;
  }

  // Epilogue: surviving walkers terminate where they stand (PPR), and the
  // per-shard counters fold into the job's stats and the engine telemetry.
  if (terminals != nullptr) {
    for (const ShardState& st : shards) {
      terminals->insert(terminals->end(), st.terminals.begin(),
                        st.terminals.end());
    }
    for (const ShardState& st : shards) {
      for (const WalkerRec& rec : st.inbox) terminals->push_back(rec.cur);
    }
  }
  uint64_t remote_rows = 0;
  if (stats != nullptr) {
    for (const ShardState& st : shards) {
      stats->steps += st.stats.steps;
      stats->partition_crossings += st.stats.partition_crossings;
    }
  }
  for (const ShardState& st : shards) remote_rows += st.remote_rows;
  supersteps_.fetch_add(supersteps, std::memory_order_relaxed);
  exchanged_.fetch_add(exchanged, std::memory_order_relaxed);
  remote_rows_.fetch_add(remote_rows, std::memory_order_relaxed);
}

WalkDistributions ShardedWalkEngine::SimRankLevels(NodeId source,
                                                   const WalkConfig& config,
                                                   WalkStats* stats) const {
  SimRankShardPolicy policy;
  policy.key = DeriveSeed(config.seed, source);
  WalkDistributions out;
  RunSupersteps(source, config, policy, stats, &out.levels,
                /*terminals=*/nullptr);
  return out;
}

SparseVector ShardedWalkEngine::PprEndpoints(NodeId source,
                                             const WalkConfig& config,
                                             const PprParams& params,
                                             WalkStats* stats) const {
  CW_CHECK_GT(params.alpha, 0.0);
  CW_CHECK_LT(params.alpha, 1.0);
  PprShardPolicy policy;
  policy.alpha = params.alpha;
  policy.key = DeriveSeed(config.seed, source);
  policy.stop_key = DeriveSeed(policy.key, kPprStopChannel);
  std::vector<NodeId> terminals;
  terminals.reserve(config.num_walkers);
  RunSupersteps(source, config, policy, stats, /*levels=*/nullptr,
                &terminals);
  const double inv_r = 1.0 / static_cast<double>(config.num_walkers);
  return AggregateEndpointNodes(terminals, inv_r, id_bits_);
}

WalkDistributions ShardedWalkEngine::Node2VecLevels(
    NodeId source, const WalkConfig& config, const Node2VecParams& params,
    WalkStats* stats) const {
  Node2VecShardPolicy policy;
  policy.plan = &plan_;
  policy.Configure(params);
  policy.key = DeriveSeed(config.seed, source);
  policy.trial_base = DeriveSeed(policy.key, kNode2VecTrialChannel);
  WalkDistributions out;
  RunSupersteps(source, config, policy, stats, &out.levels,
                /*terminals=*/nullptr);
  return out;
}

}  // namespace cloudwalker
