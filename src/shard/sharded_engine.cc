#include "shard/sharded_engine.h"

#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "engine/walk_kernel.h"
#include "shard/walk_policies.h"

namespace cloudwalker {
namespace {

// Row source over one shard's materialized slice (shard/walk_policies.h
// defines the contract). In(prev) fetches of nodes the shard does not own
// go through the plan's owning slice and are counted as remote row reads —
// the in-process stand-in for a cross-worker adjacency message.
struct SliceRowSource {
  const ShardPlan* plan = nullptr;
  const ShardSlice* slice = nullptr;
  int shard = 0;

  RowLocation Locate(NodeId v) const {
    const uint32_t row = plan->LocalRow(v);
    return RowLocation{slice->offsets[row], slice->RowDegree(row)};
  }
  NodeId Pick(const RowLocation& loc, uint64_t raw) const {
    return PickFromRow(slice->targets, slice->slots, loc, raw);
  }
  std::span<const NodeId> InRow(NodeId v, uint64_t* remote_rows) const {
    bool remote = false;
    const std::span<const NodeId> row = plan->InRow(v, shard, &remote);
    if (remote) ++*remote_rows;
    return row;
  }
};

}  // namespace

ShardedWalkEngine::ShardedWalkEngine(const Graph& graph, ShardPlan plan,
                                     int num_threads)
    : graph_(&graph),
      plan_(std::move(plan)),
      id_bits_(WalkKernel::IdBits(graph)),
      pool_(num_threads > 0 ? std::make_unique<ThreadPool>(num_threads)
                            : nullptr) {}

StatusOr<std::shared_ptr<const ShardedWalkEngine>> ShardedWalkEngine::Build(
    const Graph& graph, const WalkContext* context_or_null,
    const ShardingOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot shard an empty graph");
  }
  const AliasArena* arena =
      context_or_null != nullptr ? &context_or_null->arena() : nullptr;
  ShardPlan plan = ShardPlan::Build(graph, arena, options);
  return std::shared_ptr<const ShardedWalkEngine>(new ShardedWalkEngine(
      graph, std::move(plan), options.num_threads));
}

template <typename Policy>
void ShardedWalkEngine::RunSupersteps(NodeId source, const WalkConfig& config,
                                      const Policy& policy, WalkStats* stats,
                                      std::vector<SparseVector>* levels,
                                      std::vector<NodeId>* terminals) const {
  CW_CHECK_LT(source, graph_->num_nodes());
  CW_CHECK_GT(config.num_walkers, 0u);
  const uint32_t r = config.num_walkers;
  const double inv_r = 1.0 / static_cast<double>(r);
  const bool self_loop = config.dangling == DanglingPolicy::kSelfLoop;
  const int num_shards = plan_.num_shards();

  if constexpr (Policy::kEmitsLevels) {
    levels->assign(config.num_steps + 1, SparseVector());
    (*levels)[0] = SparseVector::FromSorted({SparseEntry{source, 1.0}});
  }

  // Per-shard cursors. A shard worker writes only its own state during the
  // advance phase; the exchange phase gives each *destination* exclusive
  // access to the outboxes addressed to it. Cache-line aligned so adjacent
  // shards' counters never share a line.
  struct alignas(kCacheLineBytes) ShardState {
    std::vector<WalkerRec> inbox;   // residents entering this superstep
    std::vector<WalkerRec> keep;    // residents staying for the next one
    std::vector<std::vector<WalkerRec>> outbox;  // emigrants, per dest
    std::vector<NodeId> endpoints;  // this level's recorded endpoints
    std::vector<NodeId> terminals;  // retired walkers (kMayRetire)
    WalkStats stats;
    uint64_t dead = 0;         // deaths this level (retire / dangling)
    uint64_t remote_rows = 0;  // cross-shard adjacency reads
  };
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  for (ShardState& st : shards) {
    st.outbox.resize(static_cast<size_t>(num_shards));
  }

  // Every walker starts at the source, resident on its owning shard.
  {
    ShardState& home = shards[static_cast<size_t>(plan_.Owner(source))];
    home.inbox.reserve(r);
    for (uint32_t w = 0; w < r; ++w) {
      home.inbox.push_back(WalkerRec{w, source, kInvalidNode});
    }
  }

  uint64_t alive = r;
  uint64_t supersteps = 0;
  uint64_t exchanged = 0;
  std::vector<NodeId> merged;  // coordinator's level merge buffer
  if constexpr (Policy::kEmitsLevels) merged.reserve(r);

  for (uint32_t t = 1; t <= config.num_steps && alive > 0; ++t) {
    // Cooperative stop, polled once per superstep like the single-node
    // kernel polls per level: a stopped job leaves the remaining levels
    // empty and the caller discards the truncated result wholesale.
    if (config.cancel != nullptr && config.cancel->ShouldStop()) break;

    // Phase A — advance. Each shard moves its residents one level using
    // only its slice (the shared AdvanceWalker step of
    // shard/walk_policies.h); emigrants batch into per-destination
    // outboxes.
    ParallelFor(
        pool_.get(), 0, static_cast<uint64_t>(num_shards), /*grain=*/1,
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t si = begin; si < end; ++si) {
            ShardState& st = shards[si];
            const SliceRowSource rows{&plan_,
                                      &plan_.slice(static_cast<int>(si)),
                                      static_cast<int>(si)};
            st.endpoints.clear();
            st.keep.clear();
            for (WalkerRec& rec : st.inbox) {
              const NodeId v = rec.cur;
              const WalkerStepOutcome outcome = AdvanceWalker(
                  rows, policy, t, self_loop, rec, &st.remote_rows);
              if constexpr (Policy::kMayRetire) {
                if (outcome == WalkerStepOutcome::kRetired) {
                  st.terminals.push_back(v);
                  ++st.dead;
                  continue;
                }
              }
              ++st.stats.steps;
              if (outcome == WalkerStepOutcome::kDied) {
                ++st.dead;
                continue;
              }
              if constexpr (Policy::kEmitsLevels) {
                st.endpoints.push_back(rec.cur);
              }
              const int dest = plan_.Owner(rec.cur);
              if (dest == static_cast<int>(si)) {
                st.keep.push_back(rec);
              } else {
                ++st.stats.partition_crossings;
                st.outbox[static_cast<size_t>(dest)].push_back(rec);
              }
            }
            st.inbox.clear();
          }
        });

    // Coordinator — merge the level. Concatenating the shards' endpoint
    // lists yields the same multiset the single-node kernel drains, and
    // the shared sort-and-RLE aggregation is order independent, so the
    // level vector is bit-identical at every shard count.
    for (ShardState& st : shards) {
      alive -= st.dead;
      st.dead = 0;
    }
    if constexpr (Policy::kEmitsLevels) {
      merged.clear();
      for (const ShardState& st : shards) {
        merged.insert(merged.end(), st.endpoints.begin(),
                      st.endpoints.end());
      }
      (*levels)[t] = AggregateEndpointNodes(merged, inv_r, id_bits_);
    }

    for (const ShardState& st : shards) {
      for (const auto& box : st.outbox) exchanged += box.size();
    }

    // Phase B — exchange at the barrier: each destination drains every
    // peer's outbox addressed to it (plus its own kept residents) into
    // its next inbox. Disjoint writes per destination; the ParallelFor
    // barriers on both sides order phase A's writes before these reads.
    ParallelFor(
        pool_.get(), 0, static_cast<uint64_t>(num_shards), /*grain=*/1,
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t di = begin; di < end; ++di) {
            ShardState& st = shards[di];
            std::swap(st.inbox, st.keep);
            for (int src = 0; src < num_shards; ++src) {
              std::vector<WalkerRec>& box =
                  shards[static_cast<size_t>(src)].outbox[di];
              st.inbox.insert(st.inbox.end(), box.begin(), box.end());
              box.clear();
            }
          }
        });
    ++supersteps;
  }

  // Epilogue: surviving walkers terminate where they stand (PPR), and the
  // per-shard counters fold into the job's stats and the engine telemetry.
  if (terminals != nullptr) {
    for (const ShardState& st : shards) {
      terminals->insert(terminals->end(), st.terminals.begin(),
                        st.terminals.end());
    }
    for (const ShardState& st : shards) {
      for (const WalkerRec& rec : st.inbox) terminals->push_back(rec.cur);
    }
  }
  uint64_t remote_rows = 0;
  if (stats != nullptr) {
    for (const ShardState& st : shards) {
      stats->steps += st.stats.steps;
      stats->partition_crossings += st.stats.partition_crossings;
    }
  }
  for (const ShardState& st : shards) remote_rows += st.remote_rows;
  supersteps_.fetch_add(supersteps, std::memory_order_relaxed);
  exchanged_.fetch_add(exchanged, std::memory_order_relaxed);
  remote_rows_.fetch_add(remote_rows, std::memory_order_relaxed);
}

WalkDistributions ShardedWalkEngine::SimRankLevels(NodeId source,
                                                   const WalkConfig& config,
                                                   WalkStats* stats) const {
  SimRankWalkPolicy policy;
  policy.Configure(config.seed, source);
  WalkDistributions out;
  RunSupersteps(source, config, policy, stats, &out.levels,
                /*terminals=*/nullptr);
  return out;
}

SparseVector ShardedWalkEngine::PprEndpoints(NodeId source,
                                             const WalkConfig& config,
                                             const PprParams& params,
                                             WalkStats* stats) const {
  PprWalkPolicy policy;
  policy.Configure(config.seed, source, params);
  std::vector<NodeId> terminals;
  terminals.reserve(config.num_walkers);
  RunSupersteps(source, config, policy, stats, /*levels=*/nullptr,
                &terminals);
  const double inv_r = 1.0 / static_cast<double>(config.num_walkers);
  return AggregateEndpointNodes(terminals, inv_r, id_bits_);
}

WalkDistributions ShardedWalkEngine::Node2VecLevels(
    NodeId source, const WalkConfig& config, const Node2VecParams& params,
    WalkStats* stats) const {
  Node2VecWalkPolicy policy;
  policy.Configure(config.seed, source, params);
  WalkDistributions out;
  RunSupersteps(source, config, policy, stats, &out.levels,
                /*terminals=*/nullptr);
  return out;
}

}  // namespace cloudwalker
