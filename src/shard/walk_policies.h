// The shard walk programs, factored out of the in-process BSP engine so
// every executor that advances exchanged walkers — ShardedWalkEngine
// (shard/sharded_engine.cc) and the socket-connected shard worker
// (net/shard_worker.cc) — runs the *same* per-walker step code. Bit
// identity across process boundaries then needs no new proof: both sides
// call AdvanceWalker with the same policy over a row source that mirrors
// the graph's in-adjacency, and every draw is already a pure function of
// (seed, source, walker, step[, trial]).
//
// WalkerRec is simultaneously the in-memory exchange record and the wire
// record of cloudwalker-net-v1 SuperstepExchange payloads; the
// static_asserts below freeze its byte layout (see also net/wire.h and
// tests/net/wire_format_test.cc's golden bytes).

#ifndef CLOUDWALKER_SHARD_WALK_POLICIES_H_
#define CLOUDWALKER_SHARD_WALK_POLICIES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "common/logging.h"
#include "common/random.h"
#include "engine/alias.h"
#include "engine/walk_program.h"
#include "graph/graph.h"

namespace cloudwalker {

/// One walker in flight between shards: its id (the RNG stream index), its
/// current node, and — for second-order programs — the node it came from.
/// Everything else a shard needs to advance the walker is derivable from
/// (config, walker, step).
struct WalkerRec {
  uint32_t walker = 0;
  NodeId cur = kInvalidNode;
  NodeId prev = kInvalidNode;
};
static_assert(std::is_trivially_copyable_v<WalkerRec>,
              "WalkerRec ships raw over the wire");
static_assert(sizeof(WalkerRec) == 12, "wire layout frozen by net-v1");
static_assert(offsetof(WalkerRec, walker) == 0);
static_assert(offsetof(WalkerRec, cur) == 4);
static_assert(offsetof(WalkerRec, prev) == 8);

/// A located adjacency row: the flat offset of the node's first in-edge in
/// its row source plus the row's degree. Locating once and resolving many
/// times keeps the node2vec trial loop off the node -> row indirection.
struct RowLocation {
  uint64_t offset = 0;
  uint32_t degree = 0;
};

/// Uniform in-neighbor pick against flat target/slot arrays, resolved
/// exactly like the single-node kernel's pass 3 (and its plain-CSR
/// fallback): with alias slots, the accept test then target or alias;
/// without, the CSR row directly. In-link rows are uniform, so both
/// consume `raw` identically — the arena-vs-CSR half of the bit-identity
/// matrix.
inline NodeId PickFromRow(std::span<const NodeId> targets,
                          std::span<const AliasSlot> slots,
                          const RowLocation& loc, uint64_t raw) {
  const uint32_t slot = AliasArena::PickSlot(raw, loc.degree);
  if (!slots.empty()) {
    const AliasSlot s = slots[loc.offset + slot];
    return static_cast<uint32_t>(raw) < s.accept ? targets[loc.offset + slot]
                                                 : s.alias;
  }
  return targets[loc.offset + slot];
}

// The three walk programs, restated as shard policies. Every draw below
// matches the corresponding single-node program (engine/walk_kernel.h,
// engine/walk_program.cc) bit for bit: the canonical move stream
// CounterRandom(DeriveSeed(seed, source), walker << 32 | step) plus the
// per-program channels. A policy is shared read-only across shard
// workers; all mutable walk state stays in the caller's cursors.
//
// A row source must provide:
//   RowLocation Locate(NodeId v) const;
//   NodeId Pick(const RowLocation&, uint64_t raw) const;
//   std::span<const NodeId> InRow(NodeId v, uint64_t* remote_rows) const;
// InRow returns the ascending in-neighbor row of *any* node (second-order
// programs read In(prev), which the caller's shard may not own) and bumps
// *remote_rows when the row belongs to another shard.

struct SimRankWalkPolicy {
  static constexpr bool kMayRetire = false;
  static constexpr bool kSecondOrder = false;
  static constexpr bool kEmitsLevels = true;

  uint64_t key = 0;  // DeriveSeed(config.seed, source)

  void Configure(uint64_t seed, NodeId source) {
    key = DeriveSeed(seed, source);
  }

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }
};

struct PprWalkPolicy {
  static constexpr bool kMayRetire = true;
  static constexpr bool kSecondOrder = false;
  static constexpr bool kEmitsLevels = false;

  double alpha = 0.85;
  uint64_t key = 0;
  uint64_t stop_key = 0;  // DeriveSeed(key, kPprStopChannel)

  void Configure(uint64_t seed, NodeId source, const PprParams& params) {
    CW_CHECK_GT(params.alpha, 0.0);
    CW_CHECK_LT(params.alpha, 1.0);
    alpha = params.alpha;
    key = DeriveSeed(seed, source);
    stop_key = DeriveSeed(key, kPprStopChannel);
  }

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }
  bool Retire(uint32_t w, uint32_t t) const {
    const uint64_t coin =
        CounterRandom(stop_key, (static_cast<uint64_t>(w) << 32) | t);
    return DrawToUnit(coin) >= alpha;
  }
};

struct Node2VecWalkPolicy {
  static constexpr bool kMayRetire = false;
  static constexpr bool kSecondOrder = true;
  static constexpr bool kEmitsLevels = true;

  uint32_t max_trials = 64;
  uint64_t key = 0;
  uint64_t trial_base = 0;  // DeriveSeed(key, kNode2VecTrialChannel)
  uint64_t thr_return = 0;
  uint64_t thr_near = 0;
  uint64_t thr_far = 0;

  void Configure(uint64_t seed, NodeId source, const Node2VecParams& params) {
    CW_CHECK_GT(params.return_p, 0.0);
    CW_CHECK_GT(params.in_out_q, 0.0);
    CW_CHECK_GT(params.max_trials, 0u);
    const double w_return = 1.0 / params.return_p;
    const double w_far = 1.0 / params.in_out_q;
    const double w_max = std::max({1.0, w_return, w_far});
    thr_return = AcceptThreshold(w_return / w_max);
    thr_near = AcceptThreshold(1.0 / w_max);
    thr_far = AcceptThreshold(w_far / w_max);
    max_trials = params.max_trials;
    key = DeriveSeed(seed, source);
    trial_base = DeriveSeed(key, kNode2VecTrialChannel);
  }

  uint64_t Draw(uint32_t w, uint32_t t) const {
    return CounterRandom(key, (static_cast<uint64_t>(w) << 32) | t);
  }

  // Full second-order step. In(prev) may live on another shard — the row
  // source counts that as a remote row read, the stand-in (in process) or
  // the real cost proxy (worker) for a cross-worker adjacency message.
  template <typename Rows>
  NodeId Advance(uint32_t w, uint32_t t, NodeId prev, const Rows& rows,
                 const RowLocation& loc, uint64_t* remote_rows) const {
    if (prev == kInvalidNode) {
      // First step: uniform on the canonical move stream — the same draw
      // SimRank would make.
      return rows.Pick(loc, Draw(w, t));
    }
    const uint64_t trial_key =
        DeriveSeed(trial_base, (static_cast<uint64_t>(w) << 32) | t);
    const std::span<const NodeId> in_prev = rows.InRow(prev, remote_rows);
    NodeId candidate = kInvalidNode;
    for (uint32_t trial = 0; trial < max_trials; ++trial) {
      const uint64_t raw = CounterRandom(trial_key, trial);
      candidate = rows.Pick(loc, raw);
      uint64_t threshold;
      if (candidate == prev) {
        threshold = thr_return;
      } else if (std::binary_search(in_prev.begin(), in_prev.end(),
                                    candidate)) {
        threshold = thr_near;
      } else {
        threshold = thr_far;
      }
      if ((raw & 0xffffffffull) < threshold) return candidate;
    }
    return candidate;  // trial cap: accept the last candidate
  }
};

/// Outcome of advancing one walker one level.
enum class WalkerStepOutcome : uint8_t {
  kAdvanced,  // rec.cur moved (or a self-loop held it); one kernel step
  kRetired,   // PPR stop-coin: terminal endpoint = rec.cur, no step
  kDied,      // dangling node under kDie; one kernel step, walker gone
};

/// Advances `rec` one level under `policy` against `rows`. The caller owns
/// the bookkeeping the outcome implies: count one step for kAdvanced /
/// kDied, record rec.cur as a level endpoint on kAdvanced (kEmitsLevels
/// policies), record the pre-advance node as a terminal on kRetired, and
/// route or retire the walker. This function is the entire per-walker
/// superstep contract shared by the in-process engine and the remote
/// worker.
template <typename Policy, typename Rows>
inline WalkerStepOutcome AdvanceWalker(const Rows& rows,
                                       const Policy& policy, uint32_t t,
                                       bool self_loop, WalkerRec& rec,
                                       uint64_t* remote_rows) {
  if constexpr (Policy::kMayRetire) {
    if (policy.Retire(rec.walker, t)) return WalkerStepOutcome::kRetired;
  }
  const RowLocation loc = rows.Locate(rec.cur);
  if (loc.degree == 0) {
    if (!self_loop) return WalkerStepOutcome::kDied;
    if constexpr (Policy::kSecondOrder) rec.prev = rec.cur;
    return WalkerStepOutcome::kAdvanced;  // self-loop: cur stays put
  }
  NodeId next;
  if constexpr (Policy::kSecondOrder) {
    next = policy.Advance(rec.walker, t, rec.prev, rows, loc, remote_rows);
    rec.prev = rec.cur;
  } else {
    next = rows.Pick(loc, policy.Draw(rec.walker, t));
  }
  rec.cur = next;
  return WalkerStepOutcome::kAdvanced;
}

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SHARD_WALK_POLICIES_H_
