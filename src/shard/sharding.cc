#include "shard/sharding.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace cloudwalker {
namespace {

// Nominal walker count used to convert a crossing *fraction* into exchange
// bytes for placement scoring (the paper's default R'). The score only
// ranks strategies, so any fixed reference load works; this one keeps the
// compute and exchange terms on comparable scales.
constexpr double kNominalWalkers = 10'000.0;

// Wire size of one exchanged walker record: walker id + current node +
// previous node (second-order programs ship all three).
constexpr double kRecordBytes = 12.0;

PartitionStrategy ToStrategy(ShardingOptions::Placement placement) {
  return placement == ShardingOptions::Placement::kRange
             ? PartitionStrategy::kRange
             : PartitionStrategy::kHash;
}

}  // namespace

PlacementScore ShardPlan::Score(const Graph& graph,
                                PartitionStrategy strategy, int num_shards,
                                const CostModel& model) {
  const Partitioner part(strategy, graph.num_nodes(), num_shards);
  std::vector<uint64_t> shard_edges(
      static_cast<size_t>(part.num_workers()), 0);
  PlacementScore score;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const int owner = part.Owner(v);
    shard_edges[static_cast<size_t>(owner)] += graph.InDegree(v);
    for (const NodeId u : graph.InNeighbors(v)) {
      if (part.Owner(u) != owner) ++score.crossing_edges;
    }
  }
  score.max_shard_edges =
      *std::max_element(shard_edges.begin(), shard_edges.end());

  // Per-superstep critical path: the busiest shard advances its resident
  // walkers (edge count proxies the resident load — hub-heavy shards read
  // bigger rows), then every crossing walker pays one exchange. The
  // latency term charges one message round per peer shard, as in the
  // simulated cluster's shuffle accounting.
  const double crossing_fraction =
      graph.num_edges() == 0
          ? 0.0
          : static_cast<double>(score.crossing_edges) /
                static_cast<double>(graph.num_edges());
  const double exchange_bytes =
      crossing_fraction * kNominalWalkers * kRecordBytes;
  score.superstep_seconds =
      static_cast<double>(score.max_shard_edges) *
          model.seconds_per_walk_step +
      model.network_latency_seconds * static_cast<double>(num_shards - 1) +
      exchange_bytes / model.network_bandwidth_bytes_per_sec;
  return score;
}

ShardPlan ShardPlan::Build(const Graph& graph, const AliasArena* arena,
                           const ShardingOptions& options) {
  CW_CHECK_GE(options.num_shards, 1);

  PlacementScore chosen_score, other_score;
  PartitionStrategy strategy;
  if (options.placement == ShardingOptions::Placement::kAuto) {
    const PlacementScore hash =
        Score(graph, PartitionStrategy::kHash, options.num_shards,
              options.cost_model);
    const PlacementScore range =
        Score(graph, PartitionStrategy::kRange, options.num_shards,
              options.cost_model);
    // Ties go to hash: it spreads hubs and contiguous id ranges evenly,
    // the safer default for the skewed graphs the walks concentrate on.
    if (range.superstep_seconds < hash.superstep_seconds) {
      strategy = PartitionStrategy::kRange;
      chosen_score = range;
      other_score = hash;
    } else {
      strategy = PartitionStrategy::kHash;
      chosen_score = hash;
      other_score = range;
    }
  } else {
    strategy = ToStrategy(options.placement);
    chosen_score =
        Score(graph, strategy, options.num_shards, options.cost_model);
    other_score = chosen_score;
  }

  Partitioner partitioner(strategy, graph.num_nodes(), options.num_shards);
  std::vector<ShardSlice> slices(
      static_cast<size_t>(partitioner.num_workers()));
  std::vector<uint32_t> local_row(graph.num_nodes(), 0);

  // First pass: assign rows (nodes ascend globally, so each slice's node
  // list is automatically ascending) and size the per-slice arrays.
  std::vector<uint64_t> slice_edges(slices.size(), 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ShardSlice& s = slices[static_cast<size_t>(partitioner.Owner(v))];
    local_row[v] = static_cast<uint32_t>(s.nodes.size());
    s.nodes.push_back(v);
    slice_edges[static_cast<size_t>(partitioner.Owner(v))] +=
        graph.InDegree(v);
  }
  const bool copy_arena = options.use_arena && arena != nullptr;
  for (size_t i = 0; i < slices.size(); ++i) {
    ShardSlice& s = slices[i];
    s.offsets.reserve(s.nodes.size() + 1);
    s.offsets.push_back(0);
    s.targets.reserve(slice_edges[i]);
    if (copy_arena) s.slots.reserve(slice_edges[i]);
  }

  // Second pass: copy each owned node's in-row (and arena row) into its
  // shard's slice. Targets stay global — the exchange, not the slice,
  // resolves ownership of the next node.
  for (size_t i = 0; i < slices.size(); ++i) {
    ShardSlice& s = slices[i];
    for (const NodeId v : s.nodes) {
      const auto row = graph.InNeighbors(v);
      s.targets.insert(s.targets.end(), row.begin(), row.end());
      if (copy_arena) {
        const uint64_t off = arena->RowOffset(v);
        const uint32_t deg = arena->RowDegree(v);
        CW_CHECK_EQ(static_cast<size_t>(deg), row.size());
        for (uint32_t k = 0; k < deg; ++k) {
          s.slots.push_back(arena->slot(off + k));
        }
      }
      s.offsets.push_back(s.targets.size());
    }
  }

  return ShardPlan(partitioner, std::move(slices), std::move(local_row),
                   chosen_score, other_score);
}

bool ShardPlan::has_arena_slices() const {
  for (const ShardSlice& s : slices_) {
    if (!s.slots.empty()) return true;
  }
  // All slices empty of slots: arena-backed only if there are no edges at
  // all anywhere (then the modes are indistinguishable anyway).
  return false;
}

}  // namespace cloudwalker
