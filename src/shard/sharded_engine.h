// ShardedWalkEngine — real in-process multi-shard walk execution
// (DESIGN.md section 11).
//
// The engine implements WalkBackend over a ShardPlan: every walk job runs
// as a sequence of BSP supersteps. In superstep t, each shard worker
// advances the walkers resident at its owned nodes one level using only
// its own slice (local CSR / alias rows, the stateless counter draws of
// the walker's stream); walkers whose next node is owned by another shard
// are batched into per-destination outboxes. At the level barrier the
// outboxes are exchanged — each destination drains every peer's outbox
// into its inbox — and the coordinator merges the shards' per-level
// endpoint lists with the same sort-and-RLE aggregation the single-node
// kernel applies. Because each walker's draws depend only on
// (seed, source, walker, step[, trial]) and the aggregation is
// walker-order independent, the merged output is bit-identical to the
// single-node engine at every shard count — the equality the shard test
// matrix (tests/shard/) asserts for all six query kinds.
//
// Thread-safety: the engine is immutable after Build (telemetry counters
// are relaxed atomics) and may serve any number of concurrent jobs; each
// job's state lives on the calling stack. With num_threads > 0 the
// supersteps of one job fan out over an engine-owned pool (safe for
// concurrent jobs — ParallelFor keeps per-call state).

#ifndef CLOUDWALKER_SHARD_SHARDED_ENGINE_H_
#define CLOUDWALKER_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/threading.h"
#include "engine/walk_backend.h"
#include "shard/sharding.h"

namespace cloudwalker {

/// Cumulative exchange telemetry of one engine (all jobs since Build).
struct ShardExchangeStats {
  uint64_t supersteps = 0;         // level barriers executed
  uint64_t walkers_exchanged = 0;  // records that crossed a shard boundary
  uint64_t remote_row_fetches = 0;  // cross-shard adjacency reads (n2v)
};

/// The in-process sharded walk backend. Borrows `graph` (and the arena it
/// was built from), which must outlive the engine; the CloudWalker::Shard
/// factory pins both.
class ShardedWalkEngine final : public WalkBackend {
 public:
  /// Partitions `graph` per `options` and materializes the shard slices.
  /// `context_or_null` supplies the alias arena mirrored into the slices
  /// (ignored when options.use_arena is false).
  static StatusOr<std::shared_ptr<const ShardedWalkEngine>> Build(
      const Graph& graph, const WalkContext* context_or_null,
      const ShardingOptions& options);

  WalkDistributions SimRankLevels(NodeId source, const WalkConfig& config,
                                  WalkStats* stats) const override;
  SparseVector PprEndpoints(NodeId source, const WalkConfig& config,
                            const PprParams& params,
                            WalkStats* stats) const override;
  WalkDistributions Node2VecLevels(NodeId source, const WalkConfig& config,
                                   const Node2VecParams& params,
                                   WalkStats* stats) const override;

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards(); }

  ShardExchangeStats exchange_stats() const {
    return ShardExchangeStats{
        supersteps_.load(std::memory_order_relaxed),
        exchanged_.load(std::memory_order_relaxed),
        remote_rows_.load(std::memory_order_relaxed)};
  }

 private:
  ShardedWalkEngine(const Graph& graph, ShardPlan plan, int num_threads);

  template <typename Policy>
  void RunSupersteps(NodeId source, const WalkConfig& config,
                     const Policy& policy, WalkStats* stats,
                     std::vector<SparseVector>* levels,
                     std::vector<NodeId>* terminals) const;

  const Graph* graph_;
  ShardPlan plan_;
  uint32_t id_bits_;
  // Engine-owned superstep pool (null = serial). Mutable: ParallelFor is
  // thread-safe, and the WalkBackend interface is const.
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::atomic<uint64_t> supersteps_{0};
  mutable std::atomic<uint64_t> exchanged_{0};
  mutable std::atomic<uint64_t> remote_rows_{0};
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_SHARD_SHARDED_ENGINE_H_
