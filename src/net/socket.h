// Minimal TCP plumbing for cloudwalker-net-v1: an RAII fd, listen /
// accept / connect with deadlines, and send-all / recv-all loops driven
// by poll(2). No external dependencies — plain POSIX sockets, kept in
// non-blocking mode so every wait is a poll with an explicit deadline and
// a slow or dead peer can never wedge the caller.
//
// Status mapping (the error vocabulary the retry logic keys on):
//   kUnavailable      — connect refused, peer closed, connection reset
//   kDeadlineExceeded — the deadline elapsed first
//   kIoError          — anything else errno-shaped
// A timeout argument <= 0 means wait forever.

#ifndef CLOUDWALKER_NET_SOCKET_H_
#define CLOUDWALKER_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace cloudwalker {

/// Owning socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1-any-interface TCP `port` (0 picks an ephemeral
/// port — read it back with BoundPort). SO_REUSEADDR is set so a
/// restarted worker can rebind its old port immediately.
StatusOr<Socket> TcpListen(uint16_t port);

/// The local port a listener (or connected socket) is bound to.
StatusOr<uint16_t> BoundPort(const Socket& socket);

/// Accepts one connection, waiting at most `timeout_seconds`.
StatusOr<Socket> TcpAccept(const Socket& listener, double timeout_seconds);

/// Connects to host:port within `timeout_seconds`. Resolution failures
/// and refused/timed-out connects come back kUnavailable — the caller's
/// cue that the worker is not there, as opposed to a protocol error.
StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port,
                            double timeout_seconds);

/// Waits until `socket` has readable data (kDeadlineExceeded on timeout).
/// Lets a serve loop poll for the next frame in short slices — checking a
/// stop flag between slices — without ever starting a partial read.
Status WaitReadable(const Socket& socket, double timeout_seconds);

/// Writes exactly `size` bytes before `timeout_seconds` elapse.
Status SendAll(const Socket& socket, const void* data, size_t size,
               double timeout_seconds);

/// Reads exactly `size` bytes before `timeout_seconds` elapse. A clean
/// peer close mid-read is kUnavailable.
Status RecvAll(const Socket& socket, void* data, size_t size,
               double timeout_seconds);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_NET_SOCKET_H_
