#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

namespace cloudwalker {
namespace {

using Clock = std::chrono::steady_clock;

// Absolute deadline for a relative timeout; <= 0 means "forever".
Clock::time_point DeadlineFor(double timeout_seconds) {
  if (timeout_seconds <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
}

// Remaining milliseconds until `deadline` for poll(); -1 = forever,
// 0 = already past.
int PollMillis(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  // Cap so the cast below can't overflow int on absurd deadlines.
  return static_cast<int>(std::min<int64_t>(left.count(), 1 << 30));
}

Status ErrnoStatus(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  if (err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
      err == ENETUNREACH || err == EHOSTUNREACH || err == ETIMEDOUT) {
    return Status::Unavailable(msg);
  }
  return Status::IoError(msg);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  // Superstep exchange is strictly request/response; Nagle only adds
  // latency. Best-effort — a failure just means slower frames.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Waits for `events` on fd until `deadline`.
Status PollFor(int fd, short events, Clock::time_point deadline,
               const char* what) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, PollMillis(deadline));
    if (rc > 0) return Status::Ok();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + ": timed out");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus(std::string(what) + ": poll", errno);
  }
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> TcpListen(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind(port " + std::to_string(port) + ")", errno);
  }
  if (::listen(sock.fd(), /*backlog=*/16) < 0) {
    return ErrnoStatus("listen", errno);
  }
  CW_RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  return sock;
}

StatusOr<uint16_t> BoundPort(const Socket& socket) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<Socket> TcpAccept(const Socket& listener, double timeout_seconds) {
  const Clock::time_point deadline = DeadlineFor(timeout_seconds);
  for (;;) {
    CW_RETURN_IF_ERROR(PollFor(listener.fd(), POLLIN, deadline, "accept"));
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      CW_RETURN_IF_ERROR(SetNonBlocking(conn.fd()));
      SetNoDelay(conn.fd());
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // raced another accept or the peer gave up; wait again
    }
    return ErrnoStatus("accept", errno);
  }
}

StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port,
                            double timeout_seconds) {
  const Clock::time_point deadline = DeadlineFor(timeout_seconds);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (gai != 0 || res == nullptr) {
    return Status::Unavailable("cannot resolve " + host + ": " +
                               ::gai_strerror(gai));
  }
  Socket sock(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!sock.valid()) {
    const int err = errno;
    ::freeaddrinfo(res);
    return ErrnoStatus("socket", err);
  }
  Status status = SetNonBlocking(sock.fd());
  if (status.ok()) {
    if (::connect(sock.fd(), res->ai_addr, res->ai_addrlen) < 0 &&
        errno != EINPROGRESS) {
      status = ErrnoStatus("connect to " + host + ":" + service, errno);
    }
  }
  ::freeaddrinfo(res);
  CW_RETURN_IF_ERROR(status);

  // Non-blocking connect: wait for writability, then read the final
  // verdict out of SO_ERROR.
  const Status wait = PollFor(sock.fd(), POLLOUT, deadline, "connect");
  if (!wait.ok()) {
    if (wait.IsDeadlineExceeded()) {
      return Status::Unavailable("connect to " + host + ":" + service +
                                 ": timed out");
    }
    return wait;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return ErrnoStatus("getsockopt(SO_ERROR)", errno);
  }
  if (err != 0) {
    return ErrnoStatus("connect to " + host + ":" + service, err);
  }
  SetNoDelay(sock.fd());
  return sock;
}

Status WaitReadable(const Socket& socket, double timeout_seconds) {
  return PollFor(socket.fd(), POLLIN, DeadlineFor(timeout_seconds), "recv");
}

Status SendAll(const Socket& socket, const void* data, size_t size,
               double timeout_seconds) {
  const Clock::time_point deadline = DeadlineFor(timeout_seconds);
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(socket.fd(), p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // send() does not set errno here; mirror RecvAll's peer-closed
      // classification instead of reporting a stale errno.
      return Status::Unavailable("connection closed by peer");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      CW_RETURN_IF_ERROR(PollFor(socket.fd(), POLLOUT, deadline, "send"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::Ok();
}

Status RecvAll(const Socket& socket, void* data, size_t size,
               double timeout_seconds) {
  const Clock::time_point deadline = DeadlineFor(timeout_seconds);
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(socket.fd(), p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      CW_RETURN_IF_ERROR(PollFor(socket.fd(), POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  return Status::Ok();
}

}  // namespace cloudwalker
