#include "net/framing.h"

#include <cstring>

#include "common/crc32.h"

namespace cloudwalker {
namespace {

// Header CRC input: the first 16 bytes with header_crc itself zeroed.
uint32_t HeaderCrc(const FrameHeader& header) {
  char bytes[sizeof(FrameHeader)];
  std::memcpy(bytes, &header, sizeof(header));
  std::memset(bytes + offsetof(FrameHeader, header_crc), 0,
              sizeof(header.header_crc));
  return Crc32(bytes, offsetof(FrameHeader, header_crc));
}

}  // namespace

Status SendFrame(const Socket& socket, MsgType type,
                 std::string_view payload, double timeout_seconds) {
  if (payload.size() > kNetMaxFramePayload) {
    return Status::InvalidArgument(
        "net: frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kNetMaxFramePayload) +
        "-byte cap");
  }
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.payload_crc = Crc32(payload.data(), payload.size());
  header.header_crc = HeaderCrc(header);
  CW_RETURN_IF_ERROR(
      SendAll(socket, &header, sizeof(header), timeout_seconds));
  if (!payload.empty()) {
    CW_RETURN_IF_ERROR(
        SendAll(socket, payload.data(), payload.size(), timeout_seconds));
  }
  return Status::Ok();
}

StatusOr<Frame> RecvFrame(const Socket& socket, double timeout_seconds) {
  FrameHeader header;
  CW_RETURN_IF_ERROR(
      RecvAll(socket, &header, sizeof(header), timeout_seconds));
  if (header.magic != kNetFrameMagic) {
    return Status::DataLoss("net: bad frame magic (stream desync?)");
  }
  if (header.header_crc != HeaderCrc(header)) {
    return Status::DataLoss("net: frame header checksum mismatch");
  }
  if (header.payload_len > kNetMaxFramePayload) {
    return Status::DataLoss("net: frame announces implausible payload of " +
                            std::to_string(header.payload_len) + " bytes");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(header.type);
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    CW_RETURN_IF_ERROR(RecvAll(socket, frame.payload.data(),
                               frame.payload.size(), timeout_seconds));
  }
  if (Crc32(frame.payload.data(), frame.payload.size()) !=
      header.payload_crc) {
    return Status::DataLoss("net: frame payload checksum mismatch");
  }
  return frame;
}

void SendErrorFrame(const Socket& socket, const Status& status,
                    double timeout_seconds) {
  (void)SendFrame(socket, MsgType::kError, EncodeErrorStatus(status),
                  timeout_seconds);
}

}  // namespace cloudwalker
