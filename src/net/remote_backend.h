// RemoteWalkBackend — the coordinator half of cloudwalker-net-v1: a
// WalkBackend that runs every walk phase as BSP supersteps across
// socket-connected shard workers (net/shard_worker.h).
//
// The coordinator holds all walker state. Each superstep it ships every
// shard's resident batch in one kSuperstep frame, collects the kResult
// replies, merges endpoint lists with the same order-independent
// aggregation the single-node kernel uses, and routes survivors to their
// next owner. Workers are stateless, so results are bit-identical to the
// single-node and in-process sharded backends at every worker count —
// and a worker death mid-superstep is recovered by reconnecting and
// resending the identical frame (deterministic replay), bounded by
// RemoteBackendOptions::max_attempts.
//
// Error model: walk methods return plain values (the WalkBackend seam),
// so a job that exhausts its retry budget records its first error —
// typically kUnavailable naming the worker — and returns a truncated
// result. The facade drains it via TakeError() and surfaces the error
// instead of the partial answer; QueryService never caches non-ok
// responses, so no partial answer is ever cached.

#ifndef CLOUDWALKER_NET_REMOTE_BACKEND_H_
#define CLOUDWALKER_NET_REMOTE_BACKEND_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/partitioner.h"
#include "common/status.h"
#include "engine/walk_backend.h"
#include "net/framing.h"
#include "net/socket.h"
#include "net/wire.h"
#include "shard/sharding.h"

namespace cloudwalker {

/// One worker endpoint; workers[i] serves shard i.
struct RemoteWorkerAddress {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port,host:port,..." (the CLI's --workers syntax).
StatusOr<std::vector<RemoteWorkerAddress>> ParseWorkerList(
    const std::string& spec);

/// Configuration of a remote backend.
struct RemoteBackendOptions {
  std::vector<RemoteWorkerAddress> workers;
  /// Node -> worker placement. kAuto scores kHash vs kRange with the cost
  /// model — the same resolution rule as the in-process ShardPlan::Build,
  /// so `--workers=N` and `--shards=N` route walkers identically.
  ShardingOptions::Placement placement = ShardingOptions::Placement::kAuto;
  CostModel cost_model = CostModel::Default();
  /// Per-connection dial + handshake budget.
  double connect_timeout_seconds = 5.0;
  /// Budget for one shard's superstep exchange (send + compute + recv).
  double superstep_timeout_seconds = 30.0;
  /// Total attempts per shard per superstep (1 initial + retries). Each
  /// retry reconnects, re-handshakes, and resends the identical frame.
  int max_attempts = 3;
  /// Pause before each retry.
  double retry_backoff_seconds = 0.05;
  /// When > 0, a job that starts after this long of inactivity first
  /// sweeps heartbeats and proactively drops dead connections (they
  /// reconnect on first use). 0 disables; Ping() is always available.
  double heartbeat_interval_seconds = 0.0;
};

/// Cumulative exchange telemetry (all jobs since Connect).
struct RemoteExchangeStats {
  uint64_t supersteps = 0;       // level barriers executed
  uint64_t walkers_shipped = 0;  // WalkerRecs sent over the wire
  uint64_t bytes_sent = 0;       // frame payload bytes, coordinator -> worker
  uint64_t bytes_received = 0;   // frame payload bytes, worker -> coordinator
  uint64_t replays = 0;          // superstep frames resent after a failure
  uint64_t reconnects = 0;       // connections re-established
};

/// The socket-connected walk backend. Borrows `graph`; CloudWalker's
/// Distribute factory pins it (plus the snapshot) for the backend's
/// lifetime. Jobs are serialized over the shared worker connections by an
/// internal mutex — concurrency lives in the workers, not in parallel
/// jobs (DESIGN.md section 13).
class RemoteWalkBackend final : public WalkBackend {
 public:
  /// Resolves placement, dials every worker, and handshakes each one
  /// (protocol version, `snapshot_fingerprint`, shard plan hash). Fails
  /// fast with kUnavailable naming the first unreachable worker.
  static StatusOr<std::shared_ptr<const RemoteWalkBackend>> Connect(
      const Graph& graph, uint64_t snapshot_fingerprint,
      const RemoteBackendOptions& options);

  WalkDistributions SimRankLevels(NodeId source, const WalkConfig& config,
                                  WalkStats* stats) const override;
  SparseVector PprEndpoints(NodeId source, const WalkConfig& config,
                            const PprParams& params,
                            WalkStats* stats) const override;
  WalkDistributions Node2VecLevels(NodeId source, const WalkConfig& config,
                                   const Node2VecParams& params,
                                   WalkStats* stats) const override;
  Status TakeError() const override;

  /// Heartbeats every worker; returns the first failure (kUnavailable
  /// naming the dead worker). Does not consume the retry budget.
  Status Ping() const;

  /// Sends kShutdown to every worker (best-effort). Not called by the
  /// destructor — workers normally outlive coordinators.
  void ShutdownWorkers() const;

  int num_workers() const { return partitioner_.num_workers(); }
  PartitionStrategy strategy() const { return partitioner_.strategy(); }
  uint64_t plan_hash() const { return plan_hash_; }
  RemoteExchangeStats exchange_stats() const;

 private:
  RemoteWalkBackend(const Graph& graph, uint64_t fingerprint,
                    RemoteBackendOptions options,
                    PartitionStrategy strategy);

  // Dials workers[shard] and runs the kHello exchange on the new
  // connection. Requires mu_.
  StatusOr<Socket> DialWorker(int shard) const;

  // One shard's superstep exchange with bounded reconnect-and-replay.
  // Requires mu_. `sent_ok` reports whether the initial in-pipeline send
  // succeeded (a failed send skips straight to the retry path).
  Status ExchangeOne(int shard, const std::string& request, bool sent_ok,
                     Frame* reply) const;

  // The BSP driver shared by the three walk methods. On failure, records
  // the first error and returns with the remaining output truncated.
  void RunJob(SuperstepMsg proto, const WalkConfig& config,
              std::vector<SparseVector>* levels,
              std::vector<NodeId>* terminals, WalkStats* stats) const;

  void RecordError(const Status& status) const;

  const Graph* graph_;
  uint64_t fingerprint_ = 0;
  RemoteBackendOptions options_;
  Partitioner partitioner_;
  uint64_t plan_hash_ = 0;
  uint32_t id_bits_ = 0;

  // Job / connection state, serialized by mu_.
  mutable std::mutex mu_;
  mutable std::vector<Socket> conns_;
  mutable std::chrono::steady_clock::time_point last_activity_;
  mutable RemoteExchangeStats stats_;

  // First job-fatal error since the last TakeError() drain. Its own lock:
  // TakeError() must not wait on a running job.
  mutable std::mutex error_mu_;
  mutable Status first_error_;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_NET_REMOTE_BACKEND_H_
