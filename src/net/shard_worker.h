// ShardWorker — the serving half of cloudwalker-net-v1: one process (or
// test thread) that owns a section-masked mmap of the snapshot and
// advances walker batches one level per kSuperstep frame.
//
// Workers are completely stateless between frames: every kSuperstep
// carries the full job spec plus the resident batch, and every draw is a
// pure function of the spec's fields (shard/walk_policies.h). The
// coordinator can therefore kill, restart, and replay a worker at any
// frame boundary and provably get the identical bytes back — the property
// the failure-path tests (tests/net/) assert end to end.
//
// A worker validates its coordinator at handshake: protocol version,
// snapshot fingerprint, node count, shard assignment, and the shard plan
// hash must all match its own view, otherwise the kHello is rejected with
// a kError frame naming the mismatch (satellite: version/compatibility
// diagnostics).

#ifndef CLOUDWALKER_NET_SHARD_WORKER_H_
#define CLOUDWALKER_NET_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "snapshot/snapshot.h"

namespace cloudwalker {

/// Configuration of one shard worker.
struct ShardWorkerOptions {
  /// Snapshot artifact to serve (opened kSnapshotIn | kSnapshotArena — a
  /// worker only ever walks in-links).
  std::string snapshot_path;
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port()).
  uint16_t port = 0;
  /// Fault injection for the failure-path tests: after serving this many
  /// frames, drop the connection once (no reply, simulating a worker
  /// killed mid-superstep). < 0 disables. Subsequent connections serve
  /// normally, so a retrying coordinator recovers by replay.
  int64_t fail_once_after_frames = -1;
  /// Log per-connection events to stderr.
  bool verbose = false;
};

/// A running shard worker: listener + snapshot, serving one coordinator
/// connection at a time.
class ShardWorker {
 public:
  /// Opens the snapshot (in-CSR + arena sections only) and binds the
  /// listener; serving starts with Serve().
  static StatusOr<std::unique_ptr<ShardWorker>> Create(
      const ShardWorkerOptions& options);

  /// The bound TCP port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// The served snapshot's fingerprint (what kHello must match).
  uint64_t fingerprint() const { return snapshot_->fingerprint(); }

  NodeId num_nodes() const { return snapshot_->num_nodes(); }

  /// Accept-and-serve loop; blocks until Stop() (or a listener error).
  /// Connections are served sequentially — one coordinator at a time.
  Status Serve();

  /// Asks Serve() to return at its next poll slice (~100 ms). Safe from
  /// any thread / signal context.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Frames served across all connections (telemetry / tests).
  uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }

 private:
  ShardWorker(ShardWorkerOptions options,
              std::shared_ptr<const SnapshotView> snapshot, Socket listener,
              uint16_t port)
      : options_(std::move(options)),
        snapshot_(std::move(snapshot)),
        listener_(std::move(listener)),
        port_(port) {}

  // Serves one coordinator connection until it closes, errors, or the
  // worker stops. Returns true when Serve() should keep accepting.
  bool ServeConnection(Socket conn);

  ShardWorkerOptions options_;
  std::shared_ptr<const SnapshotView> snapshot_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> frames_served_{0};
  bool fault_fired_ = false;
};

}  // namespace cloudwalker

#endif  // CLOUDWALKER_NET_SHARD_WORKER_H_
