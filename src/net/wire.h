// cloudwalker-net-v1 — the wire protocol between the walk coordinator
// (net/remote_backend.h) and socket-connected shard workers
// (net/shard_worker.h). See DESIGN.md section 13 for the full tables.
//
// Every message is one frame: a 20-byte FrameHeader followed by
// `payload_len` payload bytes. Headers and payloads are CRC-32 stamped
// independently, so a corrupt or desynchronized stream is detected before
// a single payload byte is interpreted. All integers are little-endian;
// the structs below are trivially-copyable PODs whose exact byte layout is
// frozen by static_asserts here and golden-byte tests
// (tests/net/wire_format_test.cc) — the same discipline the snapshot
// format uses, because WalkerRec batches are memcpy'd straight onto the
// wire.
//
// Handshake: the coordinator opens with kHello carrying the protocol
// version, the snapshot fingerprint (snapshot/snapshot.h), the shard plan
// hash, and this connection's shard assignment. The worker either replies
// kHelloOk echoing the same fields (plus a build-info string) or rejects
// with kError and a diagnostic. A connection that has not completed the
// handshake accepts nothing but kHello.
//
// Supersteps: the coordinator holds all walker state. Each
// kSuperstep frame carries the complete job spec (phase, source, seed,
// walk config, program params, the step number) plus the full resident
// WalkerRec batch, and the worker's kResult returns every surviving
// walker along with the level's endpoints/terminals — the worker keeps
// no per-job state whatsoever. Replay after a worker death is therefore
// trivially deterministic: reconnect, re-handshake, resend the identical
// frame (every draw is a pure function of its fields).

#ifndef CLOUDWALKER_NET_WIRE_H_
#define CLOUDWALKER_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "cluster/partitioner.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "shard/walk_policies.h"

namespace cloudwalker {

/// Protocol compatibility pin: bumped on any wire-visible change. A
/// handshake between different versions is rejected by the worker with a
/// diagnostic naming both sides.
inline constexpr uint32_t kNetProtocolVersion = 1;
inline constexpr std::string_view kNetProtocolName = "cloudwalker-net-v1";

/// "CWN1", read as a little-endian uint32 — the first four bytes of every
/// frame on the wire.
inline constexpr uint32_t kNetFrameMagic = 0x314e5743u;

/// Upper bound on one frame's payload; a header announcing more is
/// treated as stream corruption, not an allocation request.
inline constexpr uint32_t kNetMaxFramePayload = 1u << 30;

/// Frame types of cloudwalker-net-v1.
enum class MsgType : uint16_t {
  kHello = 1,         // coordinator -> worker: handshake offer
  kHelloOk = 2,       // worker -> coordinator: handshake accept + echo
  kSuperstep = 3,     // coordinator -> worker: advance one walker batch
  kResult = 4,        // worker -> coordinator: survivors + endpoints
  kHeartbeat = 5,     // coordinator -> worker: liveness probe
  kHeartbeatAck = 6,  // worker -> coordinator: liveness reply
  kShutdown = 7,      // coordinator -> worker: stop serving
  kError = 8,         // worker -> coordinator: encoded Status + close
};

/// The three walk phases a worker can advance (the walk half of the six
/// query kinds; see engine/walk_backend.h).
enum class WalkPhase : uint32_t {
  kSimRank = 0,
  kPpr = 1,
  kNode2Vec = 2,
};

/// 20-byte frame header. `header_crc` covers the first 16 bytes (with the
/// field itself zeroed); `payload_crc` covers the payload bytes.
struct FrameHeader {
  uint32_t magic = kNetFrameMagic;
  uint16_t type = 0;   // MsgType
  uint16_t flags = 0;  // reserved, zero in v1
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  uint32_t header_crc = 0;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 20, "wire layout frozen by net-v1");
static_assert(offsetof(FrameHeader, magic) == 0);
static_assert(offsetof(FrameHeader, type) == 4);
static_assert(offsetof(FrameHeader, flags) == 6);
static_assert(offsetof(FrameHeader, payload_len) == 8);
static_assert(offsetof(FrameHeader, payload_crc) == 12);
static_assert(offsetof(FrameHeader, header_crc) == 16);

/// kHello / kHelloOk payload, followed by a free-form build-info string
/// (the rest of the payload; not part of the compatibility check). The
/// worker accepts iff every field matches its own view of the world.
struct HelloMsg {
  uint32_t protocol_version = kNetProtocolVersion;
  uint32_t shard = 0;       // this connection's shard assignment
  uint32_t num_shards = 0;  // total workers in the plan
  uint32_t strategy = 0;    // PartitionStrategy
  uint64_t snapshot_fingerprint = 0;  // SnapshotView::fingerprint()
  uint64_t plan_hash = 0;             // NetPlanHash(...)
  uint32_t num_nodes = 0;
  uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<HelloMsg>);
static_assert(sizeof(HelloMsg) == 40, "wire layout frozen by net-v1");
static_assert(offsetof(HelloMsg, protocol_version) == 0);
static_assert(offsetof(HelloMsg, shard) == 4);
static_assert(offsetof(HelloMsg, num_shards) == 8);
static_assert(offsetof(HelloMsg, strategy) == 12);
static_assert(offsetof(HelloMsg, snapshot_fingerprint) == 16);
static_assert(offsetof(HelloMsg, plan_hash) == 24);
static_assert(offsetof(HelloMsg, num_nodes) == 32);

/// kSuperstep payload header, followed by `walker_count` raw WalkerRecs:
/// the complete, self-contained job spec for advancing one resident batch
/// one level. Unused program params are zero (e.g. alpha for SimRank).
struct SuperstepMsg {
  uint32_t phase = 0;  // WalkPhase
  uint32_t step = 0;   // t, 1-based like the BSP loop
  uint32_t source = 0;
  uint32_t num_walkers = 0;  // job-wide R (validation only)
  uint64_t seed = 0;
  uint32_t num_steps = 0;
  uint32_t dangling = 0;  // DanglingPolicy
  double alpha = 0.0;     // PPR continuation probability
  double return_p = 0.0;  // node2vec p
  double in_out_q = 0.0;  // node2vec q
  uint32_t max_trials = 0;
  uint32_t walker_count = 0;  // trailing WalkerRec count
};
static_assert(std::is_trivially_copyable_v<SuperstepMsg>);
static_assert(sizeof(SuperstepMsg) == 64, "wire layout frozen by net-v1");
static_assert(offsetof(SuperstepMsg, phase) == 0);
static_assert(offsetof(SuperstepMsg, seed) == 16);
static_assert(offsetof(SuperstepMsg, alpha) == 32);
static_assert(offsetof(SuperstepMsg, max_trials) == 56);
static_assert(offsetof(SuperstepMsg, walker_count) == 60);

/// kResult payload header, followed by `survivor_count` WalkerRecs, then
/// `endpoint_count` NodeIds (this level's recorded endpoints), then
/// `terminal_count` NodeIds (retired walkers' endpoints, PPR only).
/// Bookkeeping invariant the coordinator enforces:
///   survivor_count + terminal_count + dead == request walker_count.
struct ResultMsg {
  uint32_t step = 0;  // echoes the request's step
  uint32_t survivor_count = 0;
  uint32_t endpoint_count = 0;
  uint32_t terminal_count = 0;
  uint64_t steps = 0;        // kernel steps executed this superstep
  uint64_t remote_rows = 0;  // off-shard In(prev) rows read (node2vec)
  uint32_t dead = 0;         // dangling deaths under kDie
  uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<ResultMsg>);
static_assert(sizeof(ResultMsg) == 40, "wire layout frozen by net-v1");
static_assert(offsetof(ResultMsg, step) == 0);
static_assert(offsetof(ResultMsg, steps) == 16);
static_assert(offsetof(ResultMsg, remote_rows) == 24);
static_assert(offsetof(ResultMsg, dead) == 32);

/// Identity of a shard plan: every quantity that determines node ->
/// shard ownership, chained through the seed mixer. Coordinator and
/// worker compute it independently from the handshake fields; agreement
/// means both route walkers identically, so a drift in the Partitioner
/// algorithm itself is the only thing left to trust — which is why the
/// hash constant changes whenever that algorithm does.
inline uint64_t NetPlanHash(PartitionStrategy strategy, uint32_t num_shards,
                            NodeId num_nodes) {
  uint64_t h = DeriveSeed(0x6377706c616e6831ull,  // "cwplanh1"
                          static_cast<uint64_t>(strategy));
  h = DeriveSeed(h, num_shards);
  return DeriveSeed(h, num_nodes);
}

// --- Payload encode/decode -----------------------------------------------
//
// Encoders build a std::string payload (the framing layer stamps the
// CRCs); decoders memcpy back out of the payload view — never
// reinterpret_cast, since a std::string buffer carries no alignment
// guarantee. Decode errors are kInternal: the payload CRC already passed,
// so a malformed payload is a protocol bug, not line noise.

inline void AppendPod(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

inline std::string EncodeHello(const HelloMsg& msg,
                               std::string_view build_info) {
  std::string out;
  out.reserve(sizeof(HelloMsg) + build_info.size());
  AppendPod(&out, &msg, sizeof(msg));
  out.append(build_info);
  return out;
}

inline Status DecodeHello(std::string_view payload, HelloMsg* msg,
                          std::string* build_info) {
  if (payload.size() < sizeof(HelloMsg)) {
    return Status::Internal("net: short Hello payload (" +
                            std::to_string(payload.size()) + " bytes)");
  }
  std::memcpy(msg, payload.data(), sizeof(HelloMsg));
  build_info->assign(payload.substr(sizeof(HelloMsg)));
  return Status::Ok();
}

inline std::string EncodeSuperstep(SuperstepMsg msg,
                                   std::span<const WalkerRec> walkers) {
  msg.walker_count = static_cast<uint32_t>(walkers.size());
  std::string out;
  out.reserve(sizeof(SuperstepMsg) + walkers.size_bytes());
  AppendPod(&out, &msg, sizeof(msg));
  AppendPod(&out, walkers.data(), walkers.size_bytes());
  return out;
}

inline Status DecodeSuperstep(std::string_view payload, SuperstepMsg* msg,
                              std::vector<WalkerRec>* walkers) {
  if (payload.size() < sizeof(SuperstepMsg)) {
    return Status::Internal("net: short Superstep payload");
  }
  std::memcpy(msg, payload.data(), sizeof(SuperstepMsg));
  const size_t want =
      sizeof(SuperstepMsg) + size_t{msg->walker_count} * sizeof(WalkerRec);
  if (payload.size() != want) {
    return Status::Internal(
        "net: Superstep payload is " + std::to_string(payload.size()) +
        " bytes but walker_count implies " + std::to_string(want));
  }
  walkers->resize(msg->walker_count);
  std::memcpy(walkers->data(), payload.data() + sizeof(SuperstepMsg),
              size_t{msg->walker_count} * sizeof(WalkerRec));
  return Status::Ok();
}

inline std::string EncodeResult(ResultMsg msg,
                                std::span<const WalkerRec> survivors,
                                std::span<const NodeId> endpoints,
                                std::span<const NodeId> terminals) {
  msg.survivor_count = static_cast<uint32_t>(survivors.size());
  msg.endpoint_count = static_cast<uint32_t>(endpoints.size());
  msg.terminal_count = static_cast<uint32_t>(terminals.size());
  std::string out;
  out.reserve(sizeof(ResultMsg) + survivors.size_bytes() +
              endpoints.size_bytes() + terminals.size_bytes());
  AppendPod(&out, &msg, sizeof(msg));
  AppendPod(&out, survivors.data(), survivors.size_bytes());
  AppendPod(&out, endpoints.data(), endpoints.size_bytes());
  AppendPod(&out, terminals.data(), terminals.size_bytes());
  return out;
}

inline Status DecodeResult(std::string_view payload, ResultMsg* msg,
                           std::vector<WalkerRec>* survivors,
                           std::vector<NodeId>* endpoints,
                           std::vector<NodeId>* terminals) {
  if (payload.size() < sizeof(ResultMsg)) {
    return Status::Internal("net: short Result payload");
  }
  std::memcpy(msg, payload.data(), sizeof(ResultMsg));
  const size_t want = sizeof(ResultMsg) +
                      size_t{msg->survivor_count} * sizeof(WalkerRec) +
                      size_t{msg->endpoint_count} * sizeof(NodeId) +
                      size_t{msg->terminal_count} * sizeof(NodeId);
  if (payload.size() != want) {
    return Status::Internal(
        "net: Result payload is " + std::to_string(payload.size()) +
        " bytes but the counts imply " + std::to_string(want));
  }
  const char* p = payload.data() + sizeof(ResultMsg);
  survivors->resize(msg->survivor_count);
  std::memcpy(survivors->data(), p,
              size_t{msg->survivor_count} * sizeof(WalkerRec));
  p += size_t{msg->survivor_count} * sizeof(WalkerRec);
  endpoints->resize(msg->endpoint_count);
  std::memcpy(endpoints->data(), p,
              size_t{msg->endpoint_count} * sizeof(NodeId));
  p += size_t{msg->endpoint_count} * sizeof(NodeId);
  terminals->resize(msg->terminal_count);
  std::memcpy(terminals->data(), p,
              size_t{msg->terminal_count} * sizeof(NodeId));
  return Status::Ok();
}

/// kError payload: the status code as a uint32, then the message text.
/// The receiving side reconstitutes the Status so a worker-side
/// kFailedPrecondition (say, a fingerprint mismatch) surfaces to the
/// caller with its original code and diagnostic.
inline std::string EncodeErrorStatus(const Status& status) {
  const uint32_t code = static_cast<uint32_t>(status.code());
  std::string out;
  out.reserve(sizeof(code) + status.message().size());
  AppendPod(&out, &code, sizeof(code));
  out.append(status.message());
  return out;
}

inline Status DecodeErrorStatus(std::string_view payload) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::Internal("net: short Error payload");
  }
  uint32_t code = 0;
  std::memcpy(&code, payload.data(), sizeof(code));
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    code = static_cast<uint32_t>(StatusCode::kInternal);
  }
  return Status(static_cast<StatusCode>(code),
                std::string(payload.substr(sizeof(uint32_t))));
}

}  // namespace cloudwalker

#endif  // CLOUDWALKER_NET_WIRE_H_
