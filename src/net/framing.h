// Length-prefixed, CRC-stamped frame transport over a Socket — the only
// layer that touches raw bytes on the wire. One frame = FrameHeader
// (net/wire.h) + payload; SendFrame stamps both CRCs, RecvFrame verifies
// magic, bounds, and both CRCs before a payload byte is interpreted.
//
// Status vocabulary: kDataLoss for anything that smells like corruption
// or stream desync (bad magic, CRC mismatch, implausible length),
// kUnavailable / kDeadlineExceeded straight from the socket layer.

#ifndef CLOUDWALKER_NET_FRAMING_H_
#define CLOUDWALKER_NET_FRAMING_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace cloudwalker {

/// One received frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Sends one frame (header + payload) within `timeout_seconds`.
Status SendFrame(const Socket& socket, MsgType type,
                 std::string_view payload, double timeout_seconds);

/// Receives and verifies one frame within `timeout_seconds` (one shared
/// deadline across header and payload).
StatusOr<Frame> RecvFrame(const Socket& socket, double timeout_seconds);

/// Sends a kError frame carrying `status` (best-effort — the connection
/// is usually about to close).
void SendErrorFrame(const Socket& socket, const Status& status,
                    double timeout_seconds);

}  // namespace cloudwalker

#endif  // CLOUDWALKER_NET_FRAMING_H_
