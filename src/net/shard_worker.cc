#include "net/shard_worker.h"

#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/partitioner.h"
#include "common/version.h"
#include "net/framing.h"
#include "net/wire.h"
#include "shard/walk_policies.h"

namespace cloudwalker {
namespace {

// IO budget for one frame once bytes have started flowing. The serve loop
// itself waits in short WaitReadable slices so Stop() stays responsive;
// this bound only caps a coordinator that stalls mid-frame.
constexpr double kFrameIoSeconds = 30.0;
// Accept / readability poll slice between stop-flag checks.
constexpr double kPollSliceSeconds = 0.1;

// Row source over the snapshot's full in-CSR + alias arena
// (shard/walk_policies.h defines the contract). A worker maps the whole
// in-adjacency, so Locate indexes by global node id directly; ownership
// only matters for the remote-row telemetry of second-order In(prev)
// reads, which the partitioner answers exactly like the in-process
// engine's slice lookup.
struct SnapshotRowSource {
  std::span<const uint64_t> offsets;
  std::span<const NodeId> targets;
  std::span<const AliasSlot> slots;
  const Partitioner* partitioner = nullptr;
  int shard = 0;

  RowLocation Locate(NodeId v) const {
    return RowLocation{offsets[v],
                       static_cast<uint32_t>(offsets[v + 1] - offsets[v])};
  }
  NodeId Pick(const RowLocation& loc, uint64_t raw) const {
    return PickFromRow(targets, slots, loc, raw);
  }
  std::span<const NodeId> InRow(NodeId v, uint64_t* remote_rows) const {
    if (partitioner->Owner(v) != shard) ++*remote_rows;
    return {targets.data() + offsets[v],
            static_cast<size_t>(offsets[v + 1] - offsets[v])};
  }
};

// Advances one resident batch one level under `policy`, compacting
// survivors in place — the same bookkeeping the in-process engine's inner
// loop performs (shard/sharded_engine.cc), restated over the wire structs:
// retired walkers become terminals, dangling deaths count into
// `result->dead`, survivors keep their slot order.
template <typename Policy>
void AdvanceBatch(const SnapshotRowSource& rows, const Policy& policy,
                  const SuperstepMsg& msg, std::vector<WalkerRec>* walkers,
                  ResultMsg* result, std::vector<NodeId>* endpoints,
                  std::vector<NodeId>* terminals) {
  const bool self_loop =
      static_cast<DanglingPolicy>(msg.dangling) == DanglingPolicy::kSelfLoop;
  size_t kept = 0;
  for (WalkerRec& rec : *walkers) {
    const NodeId v = rec.cur;
    const WalkerStepOutcome outcome = AdvanceWalker(
        rows, policy, msg.step, self_loop, rec, &result->remote_rows);
    if constexpr (Policy::kMayRetire) {
      if (outcome == WalkerStepOutcome::kRetired) {
        terminals->push_back(v);
        continue;
      }
    }
    ++result->steps;
    if (outcome == WalkerStepOutcome::kDied) {
      ++result->dead;
      continue;
    }
    if constexpr (Policy::kEmitsLevels) endpoints->push_back(rec.cur);
    (*walkers)[kept++] = rec;
  }
  walkers->resize(kept);
}

// Sanity bounds on a decoded superstep. The payload CRC already passed,
// so any violation is a coordinator bug — reported as kInternal, never
// retried.
Status ValidateSuperstep(const SuperstepMsg& msg,
                         const std::vector<WalkerRec>& walkers,
                         NodeId num_nodes) {
  if (msg.step < 1 || msg.step > msg.num_steps) {
    return Status::Internal("net: superstep " + std::to_string(msg.step) +
                            " outside [1, " + std::to_string(msg.num_steps) +
                            "]");
  }
  if (msg.source >= num_nodes) {
    return Status::Internal("net: superstep source " +
                            std::to_string(msg.source) + " out of range");
  }
  if (msg.dangling > 1) {
    return Status::Internal("net: unknown dangling policy " +
                            std::to_string(msg.dangling));
  }
  switch (static_cast<WalkPhase>(msg.phase)) {
    case WalkPhase::kSimRank:
      break;
    case WalkPhase::kPpr:
      if (!(msg.alpha > 0.0) || !(msg.alpha < 1.0)) {
        return Status::Internal("net: PPR alpha outside (0, 1)");
      }
      break;
    case WalkPhase::kNode2Vec:
      if (!(msg.return_p > 0.0) || !(msg.in_out_q > 0.0) ||
          msg.max_trials == 0) {
        return Status::Internal("net: invalid node2vec parameters");
      }
      break;
    default:
      return Status::Internal("net: unknown walk phase " +
                              std::to_string(msg.phase));
  }
  for (const WalkerRec& rec : walkers) {
    if (rec.cur >= num_nodes ||
        (rec.prev != kInvalidNode && rec.prev >= num_nodes)) {
      return Status::Internal("net: walker positioned out of range");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<ShardWorker>> ShardWorker::Create(
    const ShardWorkerOptions& options) {
  // Partition-aware open: a worker walks in-links only, so the out-CSR
  // and diagonal sections are neither mapped hot nor integrity-swept.
  CW_ASSIGN_OR_RETURN(
      std::shared_ptr<const SnapshotView> snapshot,
      SnapshotView::Open(options.snapshot_path,
                         kSnapshotIn | kSnapshotArena));
  CW_ASSIGN_OR_RETURN(Socket listener, TcpListen(options.port));
  CW_ASSIGN_OR_RETURN(const uint16_t port, BoundPort(listener));
  return std::unique_ptr<ShardWorker>(new ShardWorker(
      options, std::move(snapshot), std::move(listener), port));
}

Status ShardWorker::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<Socket> conn = TcpAccept(listener_, kPollSliceSeconds);
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) continue;
      return conn.status();
    }
    if (options_.verbose) {
      std::fprintf(stderr, "[worker:%u] coordinator connected\n", port_);
    }
    if (!ServeConnection(std::move(conn).value())) break;
  }
  return Status::Ok();
}

bool ShardWorker::ServeConnection(Socket conn) {
  // Per-connection handshake state: nothing but kHello is served until
  // the coordinator's view of the world has been verified.
  std::optional<Partitioner> partitioner;
  int shard = 0;

  while (!stop_.load(std::memory_order_relaxed)) {
    const Status ready = WaitReadable(conn, kPollSliceSeconds);
    if (ready.IsDeadlineExceeded()) continue;
    if (!ready.ok()) return true;  // connection gone; accept the next one
    StatusOr<Frame> frame = RecvFrame(conn, kFrameIoSeconds);
    if (!frame.ok()) {
      if (options_.verbose) {
        std::fprintf(stderr, "[worker:%u] recv: %s\n", port_,
                     frame.status().ToString().c_str());
      }
      return true;
    }
    const uint64_t served =
        1 + frames_served_.fetch_add(1, std::memory_order_relaxed);
    if (options_.fail_once_after_frames >= 0 && !fault_fired_ &&
        served > static_cast<uint64_t>(options_.fail_once_after_frames)) {
      // Injected death: drop the connection without replying, exactly as
      // a worker killed mid-superstep would.
      fault_fired_ = true;
      if (options_.verbose) {
        std::fprintf(stderr, "[worker:%u] injected failure at frame %llu\n",
                     port_, static_cast<unsigned long long>(served));
      }
      return true;
    }

    switch (frame->type) {
      case MsgType::kHello: {
        HelloMsg hello;
        std::string peer_build;
        Status status = DecodeHello(frame->payload, &hello, &peer_build);
        if (status.ok() && hello.protocol_version != kNetProtocolVersion) {
          status = Status::FailedPrecondition(
              "net: protocol version mismatch: coordinator speaks v" +
              std::to_string(hello.protocol_version) + ", worker speaks v" +
              std::to_string(kNetProtocolVersion) + " (" +
              std::string(kNetProtocolName) + "); peer build: " + peer_build);
        }
        if (status.ok() &&
            hello.snapshot_fingerprint != snapshot_->fingerprint()) {
          status = Status::FailedPrecondition(
              "net: snapshot fingerprint mismatch: coordinator serves " +
              std::to_string(hello.snapshot_fingerprint) +
              ", worker serves " + std::to_string(snapshot_->fingerprint()) +
              " — different artifacts cannot answer bit-identically");
        }
        if (status.ok() && hello.num_nodes != snapshot_->num_nodes()) {
          status = Status::FailedPrecondition(
              "net: node count mismatch: coordinator has " +
              std::to_string(hello.num_nodes) + ", snapshot has " +
              std::to_string(snapshot_->num_nodes()));
        }
        if (status.ok() &&
            (hello.num_shards == 0 || hello.shard >= hello.num_shards)) {
          status = Status::FailedPrecondition(
              "net: shard " + std::to_string(hello.shard) +
              " outside plan of " + std::to_string(hello.num_shards) +
              " shards");
        }
        if (status.ok() && hello.strategy > 1) {
          status = Status::FailedPrecondition(
              "net: unknown partition strategy " +
              std::to_string(hello.strategy));
        }
        if (status.ok()) {
          const uint64_t expect =
              NetPlanHash(static_cast<PartitionStrategy>(hello.strategy),
                          hello.num_shards, hello.num_nodes);
          if (hello.plan_hash != expect) {
            status = Status::FailedPrecondition(
                "net: shard plan hash mismatch (coordinator " +
                std::to_string(hello.plan_hash) + ", worker " +
                std::to_string(expect) + ")");
          }
        }
        if (!status.ok()) {
          if (options_.verbose) {
            std::fprintf(stderr, "[worker:%u] handshake rejected: %s\n",
                         port_, status.ToString().c_str());
          }
          SendErrorFrame(conn, status, kFrameIoSeconds);
          return true;
        }
        partitioner.emplace(static_cast<PartitionStrategy>(hello.strategy),
                            hello.num_nodes,
                            static_cast<int>(hello.num_shards));
        shard = static_cast<int>(hello.shard);
        const std::string reply = EncodeHello(
            hello, BuildInfoString("cloudwalker_shard_worker"));
        if (!SendFrame(conn, MsgType::kHelloOk, reply, kFrameIoSeconds)
                 .ok()) {
          return true;
        }
        break;
      }
      case MsgType::kSuperstep: {
        if (!partitioner.has_value()) {
          SendErrorFrame(
              conn,
              Status::FailedPrecondition("net: superstep before handshake"),
              kFrameIoSeconds);
          return true;
        }
        SuperstepMsg msg;
        std::vector<WalkerRec> walkers;
        Status status = DecodeSuperstep(frame->payload, &msg, &walkers);
        if (status.ok()) {
          status = ValidateSuperstep(msg, walkers, snapshot_->num_nodes());
        }
        if (!status.ok()) {
          SendErrorFrame(conn, status, kFrameIoSeconds);
          return true;
        }
        const SnapshotRowSource rows{snapshot_->in_offsets(),
                                     snapshot_->in_targets(),
                                     snapshot_->arena_slots(),
                                     &partitioner.value(), shard};
        ResultMsg result;
        result.step = msg.step;
        std::vector<NodeId> endpoints;
        std::vector<NodeId> terminals;
        switch (static_cast<WalkPhase>(msg.phase)) {
          case WalkPhase::kSimRank: {
            SimRankWalkPolicy policy;
            policy.Configure(msg.seed, msg.source);
            AdvanceBatch(rows, policy, msg, &walkers, &result, &endpoints,
                         &terminals);
            break;
          }
          case WalkPhase::kPpr: {
            PprWalkPolicy policy;
            policy.Configure(msg.seed, msg.source, PprParams{msg.alpha});
            AdvanceBatch(rows, policy, msg, &walkers, &result, &endpoints,
                         &terminals);
            break;
          }
          case WalkPhase::kNode2Vec: {
            Node2VecWalkPolicy policy;
            policy.Configure(
                msg.seed, msg.source,
                Node2VecParams{msg.return_p, msg.in_out_q, msg.max_trials});
            AdvanceBatch(rows, policy, msg, &walkers, &result, &endpoints,
                         &terminals);
            break;
          }
        }
        const std::string reply =
            EncodeResult(result, walkers, endpoints, terminals);
        if (!SendFrame(conn, MsgType::kResult, reply, kFrameIoSeconds)
                 .ok()) {
          return true;
        }
        break;
      }
      case MsgType::kHeartbeat: {
        if (!SendFrame(conn, MsgType::kHeartbeatAck, {}, kFrameIoSeconds)
                 .ok()) {
          return true;
        }
        break;
      }
      case MsgType::kShutdown: {
        if (options_.verbose) {
          std::fprintf(stderr, "[worker:%u] shutdown requested\n", port_);
        }
        Stop();
        return false;
      }
      default: {
        SendErrorFrame(conn,
                       Status::Internal(
                           "net: unexpected frame type " +
                           std::to_string(static_cast<int>(frame->type))),
                       kFrameIoSeconds);
        return true;
      }
    }
  }
  return false;
}

}  // namespace cloudwalker
