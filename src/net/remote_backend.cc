#include "net/remote_backend.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/version.h"
#include "engine/walk_kernel.h"
#include "net/framing.h"

namespace cloudwalker {
namespace {

using Clock = std::chrono::steady_clock;

// Failures worth a reconnect-and-replay: the worker (or the wire) went
// away or garbled. Protocol-level rejections (kError frames, decode
// failures) are deterministic — replaying the same frame reproduces them,
// so they abort immediately instead.
bool IsTransportFailure(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded() ||
         status.IsDataLoss() || status.IsIoError();
}

PartitionStrategy ResolveStrategy(const Graph& graph, int num_workers,
                                  const RemoteBackendOptions& options) {
  switch (options.placement) {
    case ShardingOptions::Placement::kHash:
      return PartitionStrategy::kHash;
    case ShardingOptions::Placement::kRange:
      return PartitionStrategy::kRange;
    case ShardingOptions::Placement::kAuto:
      break;
  }
  // Same resolution as ShardPlan::Build: score both, ties go to hash —
  // --workers=N and --shards=N must route walkers identically.
  const PlacementScore hash = ShardPlan::Score(
      graph, PartitionStrategy::kHash, num_workers, options.cost_model);
  const PlacementScore range = ShardPlan::Score(
      graph, PartitionStrategy::kRange, num_workers, options.cost_model);
  return range.superstep_seconds < hash.superstep_seconds
             ? PartitionStrategy::kRange
             : PartitionStrategy::kHash;
}

}  // namespace

StatusOr<std::vector<RemoteWorkerAddress>> ParseWorkerList(
    const std::string& spec) {
  std::vector<RemoteWorkerAddress> workers;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    const size_t colon = entry.rfind(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument(
          "worker list entry '" + entry + "' is not host:port (spec: '" +
          spec + "')");
    }
    unsigned long port = 0;  // NOLINT(runtime/int) — strtoul's type
    try {
      size_t used = 0;
      port = std::stoul(entry.substr(colon + 1), &used);
      if (used != entry.size() - colon - 1) port = 0;
    } catch (...) {
      port = 0;
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("worker list entry '" + entry +
                                     "' has an invalid port");
    }
    workers.push_back(RemoteWorkerAddress{entry.substr(0, colon),
                                          static_cast<uint16_t>(port)});
    begin = end + 1;
  }
  return workers;
}

RemoteWalkBackend::RemoteWalkBackend(const Graph& graph,
                                     uint64_t fingerprint,
                                     RemoteBackendOptions options,
                                     PartitionStrategy strategy)
    : graph_(&graph),
      fingerprint_(fingerprint),
      options_(std::move(options)),
      partitioner_(strategy, graph.num_nodes(),
                   static_cast<int>(options_.workers.size())),
      plan_hash_(NetPlanHash(strategy,
                             static_cast<uint32_t>(options_.workers.size()),
                             graph.num_nodes())),
      id_bits_(WalkKernel::IdBits(graph)),
      last_activity_(Clock::now()) {}

StatusOr<std::shared_ptr<const RemoteWalkBackend>> RemoteWalkBackend::Connect(
    const Graph& graph, uint64_t snapshot_fingerprint,
    const RemoteBackendOptions& options) {
  if (options.workers.empty()) {
    return Status::InvalidArgument("remote backend needs >= 1 worker");
  }
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1, got " +
                                   std::to_string(options.max_attempts));
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot distribute an empty graph");
  }
  const PartitionStrategy strategy = ResolveStrategy(
      graph, static_cast<int>(options.workers.size()), options);
  std::shared_ptr<RemoteWalkBackend> backend(new RemoteWalkBackend(
      graph, snapshot_fingerprint, options, strategy));
  // Single-threaded here: no lock needed to populate the connections.
  backend->conns_.reserve(backend->options_.workers.size());
  for (size_t shard = 0; shard < backend->options_.workers.size(); ++shard) {
    CW_ASSIGN_OR_RETURN(Socket conn,
                        backend->DialWorker(static_cast<int>(shard)));
    backend->conns_.push_back(std::move(conn));
  }
  return std::shared_ptr<const RemoteWalkBackend>(std::move(backend));
}

StatusOr<Socket> RemoteWalkBackend::DialWorker(int shard) const {
  const RemoteWorkerAddress& addr =
      options_.workers[static_cast<size_t>(shard)];
  const double timeout = options_.connect_timeout_seconds;
  StatusOr<Socket> conn = TcpConnect(addr.host, addr.port, timeout);
  if (!conn.ok()) {
    return Status(conn.status().code(), "worker " + addr.ToString() + ": " +
                                            conn.status().message());
  }
  HelloMsg hello;
  hello.protocol_version = kNetProtocolVersion;
  hello.shard = static_cast<uint32_t>(shard);
  hello.num_shards = static_cast<uint32_t>(options_.workers.size());
  hello.strategy = static_cast<uint32_t>(partitioner_.strategy());
  hello.snapshot_fingerprint = fingerprint_;
  hello.plan_hash = plan_hash_;
  hello.num_nodes = graph_->num_nodes();
  CW_RETURN_IF_ERROR(SendFrame(
      *conn, MsgType::kHello,
      EncodeHello(hello, BuildInfoString("cloudwalker-coordinator")),
      timeout));
  CW_ASSIGN_OR_RETURN(Frame reply, RecvFrame(*conn, timeout));
  if (reply.type == MsgType::kError) {
    const Status rejected = DecodeErrorStatus(reply.payload);
    return Status(rejected.code(), "worker " + addr.ToString() +
                                       " rejected handshake: " +
                                       rejected.message());
  }
  if (reply.type != MsgType::kHelloOk) {
    return Status::Internal("worker " + addr.ToString() +
                            " answered kHello with frame type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  HelloMsg echo;
  std::string build_info;
  CW_RETURN_IF_ERROR(DecodeHello(reply.payload, &echo, &build_info));
  if (echo.protocol_version != hello.protocol_version ||
      echo.shard != hello.shard || echo.num_shards != hello.num_shards ||
      echo.strategy != hello.strategy ||
      echo.snapshot_fingerprint != hello.snapshot_fingerprint ||
      echo.plan_hash != hello.plan_hash ||
      echo.num_nodes != hello.num_nodes) {
    return Status::Internal("worker " + addr.ToString() +
                            " echoed a different handshake than offered");
  }
  return conn;
}

Status RemoteWalkBackend::ExchangeOne(int shard, const std::string& request,
                                      bool sent_ok, Frame* reply) const {
  const RemoteWorkerAddress& addr =
      options_.workers[static_cast<size_t>(shard)];
  const double timeout = options_.superstep_timeout_seconds;
  Socket& conn = conns_[static_cast<size_t>(shard)];
  Status last = Status::Ok();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0 || !sent_ok) {
      // Reconnect, re-handshake, resend the identical frame. The worker
      // is stateless and every draw is a pure function of the frame's
      // fields, so the replayed superstep returns the identical bytes.
      if (attempt > 0 && options_.retry_backoff_seconds > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retry_backoff_seconds));
      }
      conn.Close();
      StatusOr<Socket> fresh = DialWorker(shard);
      if (!fresh.ok()) {
        last = fresh.status();
        if (IsTransportFailure(last)) continue;
        return last;  // deterministic rejection (e.g. kFailedPrecondition)
      }
      conn = std::move(fresh).value();
      ++stats_.reconnects;
      const Status sent = SendFrame(conn, MsgType::kSuperstep, request,
                                    timeout);
      if (!sent.ok()) {
        last = sent;
        continue;
      }
      ++stats_.replays;
      stats_.bytes_sent += request.size();
    }
    sent_ok = true;
    StatusOr<Frame> got = RecvFrame(conn, timeout);
    if (!got.ok()) {
      last = got.status();
      if (IsTransportFailure(last)) continue;
      return last;
    }
    if (got->type == MsgType::kError) {
      const Status remote = DecodeErrorStatus(got->payload);
      return Status(remote.code(),
                    "worker " + addr.ToString() + ": " + remote.message());
    }
    if (got->type != MsgType::kResult) {
      return Status::Internal("worker " + addr.ToString() +
                              " answered kSuperstep with frame type " +
                              std::to_string(static_cast<int>(got->type)));
    }
    stats_.bytes_received += got->payload.size();
    *reply = std::move(got).value();
    return Status::Ok();
  }
  return Status::Unavailable(
      "worker " + addr.ToString() + " failed a superstep after " +
      std::to_string(options_.max_attempts) + " attempts; last error: " +
      last.ToString());
}

void RemoteWalkBackend::RunJob(SuperstepMsg proto, const WalkConfig& config,
                               std::vector<SparseVector>* levels,
                               std::vector<NodeId>* terminals,
                               WalkStats* stats) const {
  CW_CHECK_LT(proto.source, graph_->num_nodes());
  CW_CHECK_GT(config.num_walkers, 0u);
  const uint32_t r = config.num_walkers;
  const double inv_r = 1.0 / static_cast<double>(r);
  const int num_shards = partitioner_.num_workers();
  const bool emits_levels =
      proto.phase != static_cast<uint32_t>(WalkPhase::kPpr);
  proto.num_walkers = r;
  proto.num_steps = config.num_steps;
  proto.seed = config.seed;
  proto.dangling = static_cast<uint32_t>(config.dangling);

  if (emits_levels) {
    levels->assign(config.num_steps + 1, SparseVector());
    (*levels)[0] =
        SparseVector::FromSorted({SparseEntry{proto.source, 1.0}});
  }

  // One job at a time over the shared connections: concurrency lives in
  // the workers. QueryService's dedup/cache layers sit in front of this
  // lock, so identical concurrent queries still collapse to one job.
  std::lock_guard<std::mutex> lock(mu_);

  // Lazy death detection: a job arriving after a quiet period sweeps
  // heartbeats first and drops dead connections so the first superstep
  // reconnects eagerly instead of burning its timeout.
  if (options_.heartbeat_interval_seconds > 0 &&
      std::chrono::duration<double>(Clock::now() - last_activity_).count() >
          options_.heartbeat_interval_seconds) {
    for (int shard = 0; shard < num_shards; ++shard) {
      Socket& conn = conns_[static_cast<size_t>(shard)];
      if (!conn.valid()) continue;
      Status alive_check = SendFrame(conn, MsgType::kHeartbeat, {},
                                     options_.connect_timeout_seconds);
      if (alive_check.ok()) {
        StatusOr<Frame> ack =
            RecvFrame(conn, options_.connect_timeout_seconds);
        if (!ack.ok()) {
          alive_check = ack.status();
        } else if (ack->type != MsgType::kHeartbeatAck) {
          // A stale kResult / kError here means the connection is
          // desynced, not alive — drop it like a dead one.
          alive_check = Status::Internal("desynced heartbeat reply");
        }
      }
      if (!alive_check.ok()) conn.Close();  // redialed on first use
    }
  }

  // Every walker starts at the source, resident on its owning shard.
  std::vector<std::vector<WalkerRec>> inbox(
      static_cast<size_t>(num_shards));
  std::vector<std::vector<WalkerRec>> next(static_cast<size_t>(num_shards));
  {
    std::vector<WalkerRec>& home =
        inbox[static_cast<size_t>(partitioner_.Owner(proto.source))];
    home.reserve(r);
    for (uint32_t w = 0; w < r; ++w) {
      home.push_back(WalkerRec{w, proto.source, kInvalidNode});
    }
  }

  uint64_t alive = r;
  std::vector<NodeId> merged;
  if (emits_levels) merged.reserve(r);
  std::vector<std::string> requests(static_cast<size_t>(num_shards));
  std::vector<char> sent(static_cast<size_t>(num_shards), 0);
  std::vector<WalkerRec> survivors;
  std::vector<NodeId> endpoints;
  std::vector<NodeId> terms;

  for (uint32_t t = 1; t <= config.num_steps && alive > 0; ++t) {
    // Cooperative stop, polled once per superstep: a stopped job leaves
    // the remaining levels empty and the caller discards the truncated
    // result wholesale (same contract as the in-process engines).
    if (config.cancel != nullptr && config.cancel->ShouldStop()) break;
    proto.step = t;

    // Send-all, then recv-all: every worker computes its batch while the
    // coordinator is still draining the others' replies. Deadlock-free
    // because a worker fully reads its request before replying. A failed
    // send is not fatal here — the retry path resends.
    std::vector<int> active;
    for (int shard = 0; shard < num_shards; ++shard) {
      const std::vector<WalkerRec>& batch =
          inbox[static_cast<size_t>(shard)];
      if (batch.empty()) continue;
      active.push_back(shard);
      requests[static_cast<size_t>(shard)] = EncodeSuperstep(proto, batch);
      const Status st = SendFrame(conns_[static_cast<size_t>(shard)],
                                  MsgType::kSuperstep,
                                  requests[static_cast<size_t>(shard)],
                                  options_.superstep_timeout_seconds);
      sent[static_cast<size_t>(shard)] = st.ok() ? 1 : 0;
      if (st.ok()) {
        stats_.bytes_sent += requests[static_cast<size_t>(shard)].size();
      }
      stats_.walkers_shipped += batch.size();
    }

    if (emits_levels) merged.clear();
    for (size_t drained = 0; drained < active.size(); ++drained) {
      const int shard = active[drained];
      Frame reply;
      Status status =
          ExchangeOne(shard, requests[static_cast<size_t>(shard)],
                      sent[static_cast<size_t>(shard)] != 0, &reply);
      ResultMsg result;
      if (status.ok()) {
        survivors.clear();
        endpoints.clear();
        terms.clear();
        status = DecodeResult(reply.payload, &result, &survivors,
                              &endpoints, &terms);
      }
      if (status.ok() &&
          (result.step != t ||
           survivors.size() + terms.size() + result.dead !=
               inbox[static_cast<size_t>(shard)].size())) {
        status = Status::Internal(
            "worker " +
            options_.workers[static_cast<size_t>(shard)].ToString() +
            " broke the superstep bookkeeping invariant at step " +
            std::to_string(t));
      }
      if (!status.ok()) {
        // Unrecoverable: record the first error and return the truncated
        // job. The facade drains it via TakeError() and reports it
        // instead of the partial answer. The failing shard and every
        // still-undrained shard may have a kSuperstep in flight whose
        // reply was never matched; close those connections so the next
        // job re-dials instead of reading a stale buffered kResult.
        for (size_t rest = drained; rest < active.size(); ++rest) {
          conns_[static_cast<size_t>(active[rest])].Close();
        }
        RecordError(status);
        return;
      }
      if (stats != nullptr) stats->steps += result.steps;
      alive -= result.dead + terms.size();
      if (emits_levels) {
        merged.insert(merged.end(), endpoints.begin(), endpoints.end());
      }
      if (terminals != nullptr) {
        terminals->insert(terminals->end(), terms.begin(), terms.end());
      }
      // Route survivors to their next owner — the coordinator-side half
      // of the exchange barrier.
      for (const WalkerRec& rec : survivors) {
        const int dest = partitioner_.Owner(rec.cur);
        if (dest != shard && stats != nullptr) {
          ++stats->partition_crossings;
        }
        next[static_cast<size_t>(dest)].push_back(rec);
      }
      inbox[static_cast<size_t>(shard)].clear();
    }

    // Coordinator merge: concatenated endpoint lists aggregate to the
    // bit-identical level vector at every worker count (the
    // order-independent sort-and-RLE of AggregateEndpointNodes).
    if (emits_levels) {
      (*levels)[t] = AggregateEndpointNodes(merged, inv_r, id_bits_);
    }
    std::swap(inbox, next);
    for (std::vector<WalkerRec>& box : next) box.clear();
    ++stats_.supersteps;
    last_activity_ = Clock::now();
  }

  // Epilogue: surviving walkers terminate where they stand (PPR).
  if (terminals != nullptr) {
    for (const std::vector<WalkerRec>& box : inbox) {
      for (const WalkerRec& rec : box) terminals->push_back(rec.cur);
    }
  }
}

WalkDistributions RemoteWalkBackend::SimRankLevels(NodeId source,
                                                   const WalkConfig& config,
                                                   WalkStats* stats) const {
  SuperstepMsg proto;
  proto.phase = static_cast<uint32_t>(WalkPhase::kSimRank);
  proto.source = source;
  WalkDistributions out;
  RunJob(proto, config, &out.levels, /*terminals=*/nullptr, stats);
  return out;
}

SparseVector RemoteWalkBackend::PprEndpoints(NodeId source,
                                             const WalkConfig& config,
                                             const PprParams& params,
                                             WalkStats* stats) const {
  SuperstepMsg proto;
  proto.phase = static_cast<uint32_t>(WalkPhase::kPpr);
  proto.source = source;
  proto.alpha = params.alpha;
  std::vector<NodeId> terminals;
  terminals.reserve(config.num_walkers);
  RunJob(proto, config, /*levels=*/nullptr, &terminals, stats);
  const double inv_r = 1.0 / static_cast<double>(config.num_walkers);
  return AggregateEndpointNodes(terminals, inv_r, id_bits_);
}

WalkDistributions RemoteWalkBackend::Node2VecLevels(
    NodeId source, const WalkConfig& config, const Node2VecParams& params,
    WalkStats* stats) const {
  SuperstepMsg proto;
  proto.phase = static_cast<uint32_t>(WalkPhase::kNode2Vec);
  proto.source = source;
  proto.return_p = params.return_p;
  proto.in_out_q = params.in_out_q;
  proto.max_trials = params.max_trials;
  WalkDistributions out;
  RunJob(proto, config, &out.levels, /*terminals=*/nullptr, stats);
  return out;
}

Status RemoteWalkBackend::TakeError() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  Status out = first_error_;
  first_error_ = Status::Ok();
  return out;
}

void RemoteWalkBackend::RecordError(const Status& status) const {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = status;
}

Status RemoteWalkBackend::Ping() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t shard = 0; shard < conns_.size(); ++shard) {
    const RemoteWorkerAddress& addr = options_.workers[shard];
    Socket& conn = conns_[shard];
    if (!conn.valid()) {
      StatusOr<Socket> fresh = DialWorker(static_cast<int>(shard));
      if (!fresh.ok()) return fresh.status();
      conn = std::move(fresh).value();
      ++stats_.reconnects;
    }
    Status status = SendFrame(conn, MsgType::kHeartbeat, {},
                              options_.connect_timeout_seconds);
    StatusOr<Frame> ack = status.ok()
                              ? RecvFrame(conn,
                                          options_.connect_timeout_seconds)
                              : StatusOr<Frame>(status);
    if (!ack.ok()) {
      conn.Close();  // Ping again after a restart to re-establish
      return Status::Unavailable("worker " + addr.ToString() +
                                 " failed heartbeat: " +
                                 ack.status().ToString());
    }
    if (ack->type != MsgType::kHeartbeatAck) {
      conn.Close();  // desynced — re-dial on next use
      return Status::Internal("worker " + addr.ToString() +
                              " answered kHeartbeat with frame type " +
                              std::to_string(static_cast<int>(ack->type)));
    }
  }
  last_activity_ = Clock::now();
  return Status::Ok();
}

void RemoteWalkBackend::ShutdownWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (Socket& conn : conns_) {
    if (!conn.valid()) continue;
    (void)SendFrame(conn, MsgType::kShutdown, {},
                    options_.connect_timeout_seconds);
    conn.Close();
  }
}

RemoteExchangeStats RemoteWalkBackend::exchange_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cloudwalker
